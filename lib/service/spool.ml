module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Controller = Qca_microarch.Controller
module Error = Qca_util.Error
module Fault = Qca_util.Fault
module Job_spec = Qca.Job_spec

type entry = { entry_id : string; tenant : string; spec : Job_spec.t }

(* ---- shared name parsing --------------------------------------------- *)

let platform_of_string name qubits =
  match name with
  | "superconducting" -> Ok Platform.superconducting_17
  | "semiconducting" -> Ok Platform.semiconducting_4
  | "perfect" -> Ok (Platform.perfect qubits)
  | other -> Error (Printf.sprintf "unknown platform '%s'" other)

let mode_of_string = function
  | "perfect" -> Ok Compiler.Perfect
  | "realistic" -> Ok Compiler.Realistic
  | "real" -> Ok Compiler.Real
  | other -> Error (Printf.sprintf "unknown mode '%s'" other)

let mode_to_string = function
  | Compiler.Perfect -> "perfect"
  | Compiler.Realistic -> "realistic"
  | Compiler.Real -> "real"

let technology_of_platform = function
  | "semiconducting" -> Controller.semiconducting
  | _ -> Controller.superconducting

(* The vocabulary name a platform value came from (spool headers store
   the vocabulary, not the platform's display name, so they re-parse). *)
let platform_to_string (p : Platform.t) =
  if p.Platform.name = Platform.superconducting_17.Platform.name then
    "superconducting"
  else if p.Platform.name = Platform.semiconducting_4.Platform.name then
    "semiconducting"
  else "perfect"

let route_of_names ?(router = Qca_compiler.Mapping.Sabre) ~platform ~mode
    ~ladder ~qubits () =
  match platform with
  | None -> Ok Job_spec.Direct
  | Some pname -> (
      match (platform_of_string pname qubits, mode_of_string mode) with
      | (Error _ as e), _ -> (match e with Error m -> Error m | _ -> assert false)
      | _, Error m -> Error m
      | Ok platform, Ok mode ->
          let technology =
            match mode with
            | Compiler.Real -> Some (technology_of_platform pname)
            | Compiler.Perfect | Compiler.Realistic -> None
          in
          Ok (Job_spec.Compiled { platform; mode; technology; ladder; router }))

(* ---- serialisation --------------------------------------------------- *)

let encode ~tenant spec =
  match Job_spec.resolve spec with
  | Error e -> Error e
  | Ok circuit ->
      let b = Buffer.create 512 in
      let add k v = Printf.bprintf b "%s=%s\n" k v in
      add "tenant" tenant;
      add "label" spec.Job_spec.label;
      add "shots" (string_of_int spec.Job_spec.shots);
      (match spec.Job_spec.seed with
      | Some s -> add "seed" (string_of_int s)
      | None -> ());
      (match spec.Job_spec.noise with
      | Some p -> add "noise" (string_of_float p)
      | None -> ());
      (* [--trajectory] keeps its historical key so pre-planner job files
         stay byte-stable; only the two new forces use the [plan] key. *)
      (match spec.Job_spec.plan with
      | None -> ()
      | Some Qca_qx.Engine.Trajectory -> add "trajectory" "true"
      | Some Qca_qx.Engine.Sampled -> add "plan" "sampled"
      | Some Qca_qx.Engine.Clifford -> add "plan" "clifford");
      if not spec.Job_spec.fusion then add "fusion" "false";
      (match spec.Job_spec.fault_rate with
      | Some p ->
          add "fault-rate" (string_of_float p);
          add "fault-seed" (string_of_int spec.Job_spec.fault_seed);
          add "max-retries" (string_of_int spec.Job_spec.max_retries)
      | None -> ());
      if spec.Job_spec.priority <> 0 then
        add "priority" (string_of_int spec.Job_spec.priority);
      (match spec.Job_spec.deadline_ms with
      | Some d -> add "deadline-ms" (string_of_int d)
      | None -> ());
      (match spec.Job_spec.route with
      | Job_spec.Direct -> ()
      | Job_spec.Compiled { platform; mode; technology = _; ladder; router } ->
          add "platform" (platform_to_string platform);
          add "mode" (mode_to_string mode);
          if ladder then add "ladder" "true";
          (* Sabre is the default; only non-default routers are spooled, so
             pre-router job files stay decodable and byte-stable. *)
          (match router with
          | Qca_compiler.Mapping.Sabre -> ()
          | r -> add "router" (Qca_compiler.Mapping.strategy_to_string r)));
      Buffer.add_string b "---\n";
      Buffer.add_string b (Cqasm.emit_circuit circuit);
      Ok (Buffer.contents b)

let decode ~id text =
  let invalid msg =
    Stdlib.Error
      (Error.make ~site:"Spool.decode" ~context:[ ("job", id) ]
         (Error.Invalid msg))
  in
  (* Split at the first line that is exactly "---". *)
  let lines = String.split_on_char '\n' text in
  (

      let rec split acc = function
        | [] -> None
        | "---" :: rest -> Some (List.rev acc, String.concat "\n" rest)
        | line :: rest -> split (line :: acc) rest
      in
      match split [] lines with
      | None -> invalid "missing '---' separator"
      | Some (header, body) -> (
          let fields = ref [] in
          let bad = ref None in
          List.iter
            (fun line ->
              let line = String.trim line in
              if line <> "" && !bad = None then
                match String.index_opt line '=' with
                | None -> bad := Some ("malformed header line: " ^ line)
                | Some i ->
                    fields :=
                      ( String.sub line 0 i,
                        String.sub line (i + 1) (String.length line - i - 1) )
                      :: !fields)
            header;
          match !bad with
          | Some msg -> invalid msg
          | None -> (
              let fields = List.rev !fields in
              let known =
                [
                  "tenant"; "label"; "shots"; "seed"; "noise"; "trajectory";
                  "plan"; "fusion"; "fault-rate"; "fault-seed"; "max-retries";
                  "priority"; "deadline-ms"; "platform"; "mode"; "ladder";
                  "router";
                ]
              in
              match
                List.find_opt (fun (k, _) -> not (List.mem k known)) fields
              with
              | Some (k, _) -> invalid (Printf.sprintf "unknown key '%s'" k)
              | None -> (
                  let get k = List.assoc_opt k fields in
                  let int_field k default =
                    match get k with
                    | None -> Ok default
                    | Some v -> (
                        match int_of_string_opt v with
                        | Some n -> Ok n
                        | None ->
                            Error (Printf.sprintf "%s: not an integer: %s" k v))
                  in
                  let float_field k =
                    match get k with
                    | None -> Ok None
                    | Some v -> (
                        match float_of_string_opt v with
                        | Some f -> Ok (Some f)
                        | None ->
                            Error (Printf.sprintf "%s: not a number: %s" k v))
                  in
                  let bool_field k =
                    match get k with
                    | None | Some "false" -> Ok false
                    | Some "true" -> Ok true
                    | Some v ->
                        Error (Printf.sprintf "%s: not a boolean: %s" k v)
                  in
                  let ( let* ) r f =
                    match r with Ok v -> f v | Error m -> invalid m
                  in
                  let tenant = Option.value ~default:"anonymous" (get "tenant") in
                  let label = Option.value ~default:("job-" ^ id) (get "label") in
                  let payload = Job_spec.Source { name = label; text = body } in
                  match Job_spec.resolve (Job_spec.make ~label payload) with
                  | Error e -> Stdlib.Error e
                  | Ok circuit ->
                      let* shots = int_field "shots" 1024 in
                      let* seed =
                        match get "seed" with
                        | None -> Ok None
                        | Some v -> (
                            match int_of_string_opt v with
                            | Some n -> Ok (Some n)
                            | None -> Error ("seed: not an integer: " ^ v))
                      in
                      let* noise = float_field "noise" in
                      let* force_trajectory = bool_field "trajectory" in
                      let* plan =
                        match (get "plan", force_trajectory) with
                        | None, false -> Ok None
                        | None, true -> Ok (Some Qca_qx.Engine.Trajectory)
                        | Some "sampled", false ->
                            Ok (Some Qca_qx.Engine.Sampled)
                        | Some "clifford", false ->
                            Ok (Some Qca_qx.Engine.Clifford)
                        | Some ("sampled" | "clifford"), true ->
                            Error "plan: conflicts with trajectory=true"
                        | Some v, _ ->
                            Error
                              (Printf.sprintf
                                 "plan: expected sampled or clifford, got %s" v)
                      in
                      let* fusion =
                        match get "fusion" with
                        | None | Some "true" -> Ok true
                        | Some "false" -> Ok false
                        | Some v -> Error ("fusion: not a boolean: " ^ v)
                      in
                      let* fault_rate = float_field "fault-rate" in
                      let* fault_seed =
                        int_field "fault-seed" Qca_util.Fault.default_seed
                      in
                      let* max_retries =
                        int_field "max-retries"
                          Qca_util.Resilience.default_policy
                            .Qca_util.Resilience.max_retries
                      in
                      let* priority = int_field "priority" 0 in
                      let* deadline_ms =
                        match get "deadline-ms" with
                        | None -> Ok None
                        | Some v -> (
                            match int_of_string_opt v with
                            | Some n when n >= 0 -> Ok (Some n)
                            | _ ->
                                Error
                                  ("deadline-ms: not a non-negative integer: "
                                 ^ v))
                      in
                      let* ladder = bool_field "ladder" in
                      let mode =
                        Option.value ~default:"realistic" (get "mode")
                      in
                      let* router =
                        match get "router" with
                        | None -> Ok Qca_compiler.Mapping.Sabre
                        | Some v -> (
                            match Qca_compiler.Mapping.strategy_of_string v with
                            | Ok r -> Ok r
                            | Error m -> Error ("router: " ^ m))
                      in
                      let* route =
                        route_of_names ~router ~platform:(get "platform") ~mode
                          ~ladder ~qubits:(Circuit.qubit_count circuit) ()
                      in
                      if shots < 1 then invalid "shots must be positive"
                      else
                        let base = Job_spec.make ~label payload in
                        let spec =
                          {
                            base with
                            Job_spec.route;
                            shots;
                            seed;
                            noise;
                            plan;
                            fusion;
                            fault_rate;
                            fault_seed;
                            max_retries;
                            priority;
                            deadline_ms;
                          }
                        in
                        Ok { entry_id = id; tenant; spec }))))

(* ---- spool directories ----------------------------------------------- *)

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path then mkdir_p parent;
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

let inbox dir = Filename.concat dir "inbox"
let results dir = Filename.concat dir "results"
let cancels dir = Filename.concat dir "cancel"
let tmp dir = Filename.concat dir "tmp"
let active_dir dir = Filename.concat dir "active"
let failed_dir dir = Filename.concat dir "failed"

let init dir =
  mkdir_p (inbox dir);
  mkdir_p (results dir);
  mkdir_p (cancels dir);
  mkdir_p (tmp dir);
  mkdir_p (active_dir dir);
  mkdir_p (failed_dir dir)

let ids_in path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter_map (fun f -> int_of_string_opt (Filename.remove_extension f))
  else []

(* active/ and failed/ participate: a claimed or retired job's id must not
   be reissued while its journal entry is still alive. *)
let next_id dir =
  let top =
    List.fold_left
      (fun acc d -> List.fold_left max acc (ids_in d))
      0
      [ inbox dir; results dir; cancels dir; active_dir dir; failed_dir dir ]
  in
  Printf.sprintf "%06d" (top + 1)

let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* Write-then-rename so readers never observe a partial file. With
   [durable], the data and both directories are fsynced around the rename —
   rename alone orders nothing on a real disk. *)
let atomic_write ?(durable = false) dir ~target content =
  let staging = Filename.concat (tmp dir) (Filename.basename target) in
  let oc = open_out staging in
  output_string oc content;
  if durable then begin
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc)
  end;
  close_out oc;
  Sys.rename staging target;
  if durable then begin
    fsync_dir (Filename.dirname target);
    fsync_dir (tmp dir)
  end

let sweep_tmp ~dir =
  let d = tmp dir in
  if Sys.file_exists d && Sys.is_directory d then
    Array.fold_left
      (fun n f ->
        match Sys.remove (Filename.concat d f) with
        | () -> n + 1
        | exception Sys_error _ -> n)
      0 (Sys.readdir d)
  else 0

let submit ?durable ~dir ~tenant spec =
  match encode ~tenant spec with
  | Error e -> Error e
  | Ok text ->
      init dir;
      let id = next_id dir in
      atomic_write ?durable dir
        ~target:(Filename.concat (inbox dir) (id ^ ".job"))
        text;
      Ok id

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let job_files d =
  if Sys.file_exists d && Sys.is_directory d then
    Sys.readdir d |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".job")
    |> List.sort compare
  else []

let pending_ids ~dir =
  let d = inbox dir in
  job_files d
  |> List.map (fun f ->
         let id = Filename.remove_extension f in
         (id, decode ~id (read_file (Filename.concat d f))))

let pending ~dir = List.map snd (pending_ids ~dir)

let in_inbox ~dir id =
  Sys.file_exists (Filename.concat (inbox dir) (id ^ ".job"))

let consume ~dir id =
  let path = Filename.concat (inbox dir) (id ^ ".job") in
  if Sys.file_exists path then Sys.remove path

let result_path dir id = Filename.concat (results dir) (id ^ ".json")

let read_result ~dir id =
  let path = result_path dir id in
  if Sys.file_exists path then Some (read_file path) else None

let write_result ?durable ~dir ~id line =
  init dir;
  Fault.crash_point "publish-pre";
  atomic_write ?durable dir ~target:(result_path dir id) (line ^ "\n");
  Fault.crash_point "publish-post"

let request_cancel ~dir id =
  if Sys.file_exists (result_path dir id) then false
  else begin
    init dir;
    atomic_write dir ~target:(Filename.concat (cancels dir) id) "cancel\n";
    true
  end

let cancel_requested ~dir id =
  Sys.file_exists (Filename.concat (cancels dir) id)

let clear_cancel ~dir id =
  let path = Filename.concat (cancels dir) id in
  if Sys.file_exists path then Sys.remove path

(* ---- the lifecycle journal -------------------------------------------- *)

type claim = { claim_pid : int; attempt : int; claimed_at_ms : int }

let now_ms () = int_of_float (Unix.gettimeofday () *. 1000.0)

let active_job_path dir id = Filename.concat (active_dir dir) (id ^ ".job")
let claim_path dir id = Filename.concat (active_dir dir) (id ^ ".claim")

let write_claim dir ~id c =
  atomic_write dir ~target:(claim_path dir id)
    (Printf.sprintf "pid=%d\nattempt=%d\nclaimed-at-ms=%d\n" c.claim_pid
       c.attempt c.claimed_at_ms)

let read_claim ~dir id =
  let path = claim_path dir id in
  if not (Sys.file_exists path) then None
  else
    let fields =
      String.split_on_char '\n' (read_file path)
      |> List.filter_map (fun line ->
             match String.index_opt line '=' with
             | None -> None
             | Some i ->
                 Some
                   ( String.sub line 0 i,
                     String.sub line (i + 1) (String.length line - i - 1) ))
    in
    let int_of k =
      Option.value ~default:0
        (Option.bind (List.assoc_opt k fields) int_of_string_opt)
    in
    Some
      {
        claim_pid = int_of "pid";
        attempt = int_of "attempt";
        claimed_at_ms = int_of "claimed-at-ms";
      }

let in_active ~dir id =
  if Sys.file_exists (active_job_path dir id) then
    match read_claim ~dir id with
    | Some c -> Some c
    | None -> Some { claim_pid = 0; attempt = 0; claimed_at_ms = 0 }
  else None

let claim ~dir ~pid id =
  let src = Filename.concat (inbox dir) (id ^ ".job") in
  if not (Sys.file_exists src) then false
  else begin
    Fault.crash_point "claim-pre";
    Sys.rename src (active_job_path dir id);
    write_claim dir ~id
      { claim_pid = pid; attempt = 1; claimed_at_ms = now_ms () };
    Fault.crash_point "claim-post";
    true
  end

let complete ~dir id =
  let job = active_job_path dir id in
  if Sys.file_exists job then Sys.remove job;
  let c = claim_path dir id in
  if Sys.file_exists c then Sys.remove c

let retire ~dir id =
  let job = active_job_path dir id in
  if Sys.file_exists job then begin
    mkdir_p (failed_dir dir);
    Sys.rename job (Filename.concat (failed_dir dir) (id ^ ".job"))
  end;
  let c = claim_path dir id in
  if Sys.file_exists c then Sys.remove c

let active ~dir =
  job_files (active_dir dir) |> List.map Filename.remove_extension

(* ---- daemon heartbeat ------------------------------------------------- *)

type heartbeat = {
  hb_pid : int;
  hb_state : string;
  hb_started_at_ms : int;
  hb_updated_at_ms : int;
}

let heartbeat_path dir = Filename.concat dir "daemon.json"

let write_heartbeat ~dir ~pid ~state ~started_at_ms =
  init dir;
  atomic_write dir ~target:(heartbeat_path dir)
    (Printf.sprintf
       "{\"pid\":%d,\"state\":\"%s\",\"started_at_ms\":%d,\"updated_at_ms\":%d}\n"
       pid state started_at_ms (now_ms ()))

let read_heartbeat ~dir =
  let path = heartbeat_path dir in
  if not (Sys.file_exists path) then None
  else
    match
      Scanf.sscanf (String.trim (read_file path))
        "{\"pid\":%d,\"state\":%S,\"started_at_ms\":%d,\"updated_at_ms\":%d}"
        (fun p s a u ->
          { hb_pid = p; hb_state = s; hb_started_at_ms = a; hb_updated_at_ms = u })
    with
    | hb -> Some hb
    | exception (Scanf.Scan_failure _ | End_of_file | Failure _) -> None

let pid_alive pid =
  pid > 0
  &&
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
  | exception Unix.Unix_error _ -> false

(* ---- crash recovery --------------------------------------------------- *)

type recovered =
  | Replay of {
      id : string;
      entry : (entry, Qca_util.Error.t) result;
      attempt : int;
    }
  | Already_published of string
  | Poison of { id : string; attempts : int; tenant : string; label : string }
  | Busy of { id : string; owner : int }

let recover ~dir ~pid ~max_attempts =
  init dir;
  active ~dir
  |> List.map (fun id ->
         if read_result ~dir id <> None then begin
           (* The result is the commit point: a crash after publish but
              before journal cleanup must not re-execute the job. *)
           complete ~dir id;
           Already_published id
         end
         else
           match read_claim ~dir id with
           | Some c when pid_alive c.claim_pid && c.claim_pid <> pid ->
               (* A live daemon owns this claim (daemon.json names it too):
                  stealing it would run the job twice. *)
               Busy { id; owner = c.claim_pid }
           | claim_opt ->
               let attempts =
                 match claim_opt with Some c -> c.attempt | None -> 0
               in
               let text = read_file (active_job_path dir id) in
               if attempts + 1 > max_attempts then begin
                 let tenant, label =
                   match decode ~id text with
                   | Ok e -> (e.tenant, e.spec.Job_spec.label)
                   | Error _ -> ("unknown", "?")
                 in
                 retire ~dir id;
                 Poison { id; attempts; tenant; label }
               end
               else begin
                 write_claim dir ~id
                   {
                     claim_pid = pid;
                     attempt = attempts + 1;
                     claimed_at_ms = now_ms ();
                   };
                 Replay { id; entry = decode ~id text; attempt = attempts + 1 }
               end)
