module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Controller = Qca_microarch.Controller
module Error = Qca_util.Error
module Job_spec = Qca.Job_spec

type entry = { entry_id : string; tenant : string; spec : Job_spec.t }

(* ---- shared name parsing --------------------------------------------- *)

let platform_of_string name qubits =
  match name with
  | "superconducting" -> Ok Platform.superconducting_17
  | "semiconducting" -> Ok Platform.semiconducting_4
  | "perfect" -> Ok (Platform.perfect qubits)
  | other -> Error (Printf.sprintf "unknown platform '%s'" other)

let mode_of_string = function
  | "perfect" -> Ok Compiler.Perfect
  | "realistic" -> Ok Compiler.Realistic
  | "real" -> Ok Compiler.Real
  | other -> Error (Printf.sprintf "unknown mode '%s'" other)

let mode_to_string = function
  | Compiler.Perfect -> "perfect"
  | Compiler.Realistic -> "realistic"
  | Compiler.Real -> "real"

let technology_of_platform = function
  | "semiconducting" -> Controller.semiconducting
  | _ -> Controller.superconducting

(* The vocabulary name a platform value came from (spool headers store
   the vocabulary, not the platform's display name, so they re-parse). *)
let platform_to_string (p : Platform.t) =
  if p.Platform.name = Platform.superconducting_17.Platform.name then
    "superconducting"
  else if p.Platform.name = Platform.semiconducting_4.Platform.name then
    "semiconducting"
  else "perfect"

let route_of_names ~platform ~mode ~ladder ~qubits =
  match platform with
  | None -> Ok Job_spec.Direct
  | Some pname -> (
      match (platform_of_string pname qubits, mode_of_string mode) with
      | (Error _ as e), _ -> (match e with Error m -> Error m | _ -> assert false)
      | _, Error m -> Error m
      | Ok platform, Ok mode ->
          let technology =
            match mode with
            | Compiler.Real -> Some (technology_of_platform pname)
            | Compiler.Perfect | Compiler.Realistic -> None
          in
          Ok (Job_spec.Compiled { platform; mode; technology; ladder }))

(* ---- serialisation --------------------------------------------------- *)

let encode ~tenant spec =
  match Job_spec.resolve spec with
  | Error e -> Error e
  | Ok circuit ->
      let b = Buffer.create 512 in
      let add k v = Printf.bprintf b "%s=%s\n" k v in
      add "tenant" tenant;
      add "label" spec.Job_spec.label;
      add "shots" (string_of_int spec.Job_spec.shots);
      (match spec.Job_spec.seed with
      | Some s -> add "seed" (string_of_int s)
      | None -> ());
      (match spec.Job_spec.noise with
      | Some p -> add "noise" (string_of_float p)
      | None -> ());
      if spec.Job_spec.force_trajectory then add "trajectory" "true";
      if not spec.Job_spec.fusion then add "fusion" "false";
      (match spec.Job_spec.fault_rate with
      | Some p ->
          add "fault-rate" (string_of_float p);
          add "fault-seed" (string_of_int spec.Job_spec.fault_seed);
          add "max-retries" (string_of_int spec.Job_spec.max_retries)
      | None -> ());
      if spec.Job_spec.priority <> 0 then
        add "priority" (string_of_int spec.Job_spec.priority);
      (match spec.Job_spec.route with
      | Job_spec.Direct -> ()
      | Job_spec.Compiled { platform; mode; technology = _; ladder } ->
          add "platform" (platform_to_string platform);
          add "mode" (mode_to_string mode);
          if ladder then add "ladder" "true");
      Buffer.add_string b "---\n";
      Buffer.add_string b (Cqasm.emit_circuit circuit);
      Ok (Buffer.contents b)

let decode ~id text =
  let invalid msg =
    Stdlib.Error
      (Error.make ~site:"Spool.decode" ~context:[ ("job", id) ]
         (Error.Invalid msg))
  in
  (* Split at the first line that is exactly "---". *)
  let lines = String.split_on_char '\n' text in
  (

      let rec split acc = function
        | [] -> None
        | "---" :: rest -> Some (List.rev acc, String.concat "\n" rest)
        | line :: rest -> split (line :: acc) rest
      in
      match split [] lines with
      | None -> invalid "missing '---' separator"
      | Some (header, body) -> (
          let fields = ref [] in
          let bad = ref None in
          List.iter
            (fun line ->
              let line = String.trim line in
              if line <> "" && !bad = None then
                match String.index_opt line '=' with
                | None -> bad := Some ("malformed header line: " ^ line)
                | Some i ->
                    fields :=
                      ( String.sub line 0 i,
                        String.sub line (i + 1) (String.length line - i - 1) )
                      :: !fields)
            header;
          match !bad with
          | Some msg -> invalid msg
          | None -> (
              let fields = List.rev !fields in
              let known =
                [
                  "tenant"; "label"; "shots"; "seed"; "noise"; "trajectory";
                  "fusion"; "fault-rate"; "fault-seed"; "max-retries";
                  "priority"; "platform"; "mode"; "ladder";
                ]
              in
              match
                List.find_opt (fun (k, _) -> not (List.mem k known)) fields
              with
              | Some (k, _) -> invalid (Printf.sprintf "unknown key '%s'" k)
              | None -> (
                  let get k = List.assoc_opt k fields in
                  let int_field k default =
                    match get k with
                    | None -> Ok default
                    | Some v -> (
                        match int_of_string_opt v with
                        | Some n -> Ok n
                        | None ->
                            Error (Printf.sprintf "%s: not an integer: %s" k v))
                  in
                  let float_field k =
                    match get k with
                    | None -> Ok None
                    | Some v -> (
                        match float_of_string_opt v with
                        | Some f -> Ok (Some f)
                        | None ->
                            Error (Printf.sprintf "%s: not a number: %s" k v))
                  in
                  let bool_field k =
                    match get k with
                    | None | Some "false" -> Ok false
                    | Some "true" -> Ok true
                    | Some v ->
                        Error (Printf.sprintf "%s: not a boolean: %s" k v)
                  in
                  let ( let* ) r f =
                    match r with Ok v -> f v | Error m -> invalid m
                  in
                  let tenant = Option.value ~default:"anonymous" (get "tenant") in
                  let label = Option.value ~default:("job-" ^ id) (get "label") in
                  let payload = Job_spec.Source { name = label; text = body } in
                  match Job_spec.resolve (Job_spec.make ~label payload) with
                  | Error e -> Stdlib.Error e
                  | Ok circuit ->
                      let* shots = int_field "shots" 1024 in
                      let* seed =
                        match get "seed" with
                        | None -> Ok None
                        | Some v -> (
                            match int_of_string_opt v with
                            | Some n -> Ok (Some n)
                            | None -> Error ("seed: not an integer: " ^ v))
                      in
                      let* noise = float_field "noise" in
                      let* force_trajectory = bool_field "trajectory" in
                      let* fusion =
                        match get "fusion" with
                        | None | Some "true" -> Ok true
                        | Some "false" -> Ok false
                        | Some v -> Error ("fusion: not a boolean: " ^ v)
                      in
                      let* fault_rate = float_field "fault-rate" in
                      let* fault_seed =
                        int_field "fault-seed" Qca_util.Fault.default_seed
                      in
                      let* max_retries =
                        int_field "max-retries"
                          Qca_util.Resilience.default_policy
                            .Qca_util.Resilience.max_retries
                      in
                      let* priority = int_field "priority" 0 in
                      let* ladder = bool_field "ladder" in
                      let mode =
                        Option.value ~default:"realistic" (get "mode")
                      in
                      let* route =
                        route_of_names ~platform:(get "platform") ~mode ~ladder
                          ~qubits:(Circuit.qubit_count circuit)
                      in
                      if shots < 1 then invalid "shots must be positive"
                      else
                        let base = Job_spec.make ~label payload in
                        let spec =
                          {
                            base with
                            Job_spec.route;
                            shots;
                            seed;
                            noise;
                            force_trajectory;
                            fusion;
                            fault_rate;
                            fault_seed;
                            max_retries;
                            priority;
                          }
                        in
                        Ok { entry_id = id; tenant; spec }))))

(* ---- spool directories ----------------------------------------------- *)

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path then mkdir_p parent;
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

let inbox dir = Filename.concat dir "inbox"
let results dir = Filename.concat dir "results"
let cancels dir = Filename.concat dir "cancel"
let tmp dir = Filename.concat dir "tmp"

let init dir =
  mkdir_p (inbox dir);
  mkdir_p (results dir);
  mkdir_p (cancels dir);
  mkdir_p (tmp dir)

let ids_in path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter_map (fun f -> int_of_string_opt (Filename.remove_extension f))
  else []

let next_id dir =
  let top =
    List.fold_left
      (fun acc d -> List.fold_left max acc (ids_in d))
      0
      [ inbox dir; results dir; cancels dir ]
  in
  Printf.sprintf "%06d" (top + 1)

(* Write-then-rename so readers never observe a partial file. *)
let atomic_write dir ~target content =
  let staging = Filename.concat (tmp dir) (Filename.basename target) in
  let oc = open_out staging in
  output_string oc content;
  close_out oc;
  Sys.rename staging target

let submit ~dir ~tenant spec =
  match encode ~tenant spec with
  | Error e -> Error e
  | Ok text ->
      init dir;
      let id = next_id dir in
      atomic_write dir
        ~target:(Filename.concat (inbox dir) (id ^ ".job"))
        text;
      Ok id

let pending ~dir =
  let d = inbox dir in
  if not (Sys.file_exists d) then []
  else
    Sys.readdir d |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".job")
    |> List.sort compare
    |> List.map (fun f ->
           let id = Filename.remove_extension f in
           let path = Filename.concat d f in
           let ic = open_in path in
           let n = in_channel_length ic in
           let text = really_input_string ic n in
           close_in ic;
           decode ~id text)

let in_inbox ~dir id =
  Sys.file_exists (Filename.concat (inbox dir) (id ^ ".job"))

let consume ~dir id =
  let path = Filename.concat (inbox dir) (id ^ ".job") in
  if Sys.file_exists path then Sys.remove path

let result_path dir id = Filename.concat (results dir) (id ^ ".json")

let read_result ~dir id =
  let path = result_path dir id in
  if Sys.file_exists path then begin
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    Some text
  end
  else None

let write_result ~dir ~id line =
  init dir;
  atomic_write dir ~target:(result_path dir id) (line ^ "\n")

let request_cancel ~dir id =
  if Sys.file_exists (result_path dir id) then false
  else begin
    init dir;
    atomic_write dir ~target:(Filename.concat (cancels dir) id) "cancel\n";
    true
  end

let cancel_requested ~dir id =
  Sys.file_exists (Filename.concat (cancels dir) id)
