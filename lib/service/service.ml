module Engine = Qca_qx.Engine
module Circuit = Qca_circuit.Circuit
module Compiler = Qca_compiler.Compiler
module Error = Qca_util.Error
module Rng = Qca_util.Rng
module Trace = Qca_util.Trace
module Job_spec = Qca.Job_spec
module Runner = Qca.Runner

type quota = { max_running : int; max_queued : int; weight : float }

type config = {
  workers : int;
  max_queue : int;
  degrade_above : int;
  slice_shots : int;
  degraded_shot_cap : int;
  default_quota : quota;
  quotas : (string * quota) list;
  cache_capacity : int;
  service_seed : int;
  admission_max_bytes : float;
  admission_max_ns : float;
}

let default_quota = { max_running = 4; max_queued = 16; weight = 1.0 }

let default_config =
  {
    workers = 2;
    max_queue = 64;
    degrade_above = 48;
    slice_shots = 256;
    degraded_shot_cap = 128;
    default_quota;
    quotas = [];
    cache_capacity = 128;
    service_seed = 0xD0_5EED;
    admission_max_bytes = Qca_analysis.Estimate.host_bytes_default;
    admission_max_ns = 0.0;
  }

(* How a started job executes across scheduler slices. *)
type exec_kind =
  | Batched of { dist : Engine.sampled_distribution; shared : bool }
      (* Sampled-plan job: draw shot batches from a (possibly shared)
         distribution; the simulate pass ran at most once per digest. *)
  | Sliced
      (* Trajectory-path job: re-enter the runner per slice with the
         job's RNG threaded through, so the merged result is
         bit-identical to one uninterrupted run. *)
  | Atomic
      (* Compiled-route or fault-injected job: one runner call, full
         cost in a single slice. *)

type active = {
  kind : exec_kind;
  rng : Rng.t;
  faults : Qca_util.Fault.t option;
  started_at : float;  (* wall clock, for deadline_ms enforcement *)
  mutable remaining : int;
  mutable done_shots : int;
  acc : (string, int) Hashtbl.t;
  mutable acc_report : Engine.run_report option;
  mutable a_compiled : Compiler.output option;
  mutable a_microarch : Qca_microarch.Controller.run_stats option;
}

type phase =
  | Waiting
  | Active of active
  | Finished of (Runner.outcome, Error.t) result
  | Cancelled_job

type job = {
  id : int;
  tenant : string;
  spec : Job_spec.t;
  circuit : Circuit.t;
  digest : string;
  key : string option;
  degraded_note : string option;
  mutable phase : phase;
}

type tenant_state = {
  t_name : string;
  quota : quota;
  waiting : int Queue.t;
  mutable active_ids : int list;
  mutable running : int;
  mutable vtime : float;
  mutable t_completed : int;
}

type handle = { h_id : int; h_tenant : string }

let job_id h = h.h_id
let job_tenant h = h.h_tenant

type status =
  | Queued of int
  | Running of { done_shots : int; total_shots : int }
  | Done of Runner.outcome
  | Failed of Error.t
  | Cancelled

type t = {
  config : config;
  jobs : (int, job) Hashtbl.t;
  tenants : (string, tenant_state) Hashtbl.t;
  mutable next_id : int;
  dist_cache : (string, Engine.sampled_distribution) Hashtbl.t;
  result_cache : (string, Runner.outcome) Hashtbl.t;
  cache_order : string Queue.t;
  mutable s_submitted : int;
  mutable s_accepted : int;
  mutable s_completed : int;
  mutable s_failed : int;
  mutable s_deadline : int;
  mutable s_cancelled : int;
  mutable s_rejected : int;
  mutable s_rejected_estimate : int;
  mutable s_degraded : int;
  mutable s_cache_hits : int;
  mutable s_shared : int;
  mutable s_slices : int;
  mutable exec_log : (string * int) list;  (* newest first *)
}

let create ?(config = default_config) () =
  let config =
    {
      config with
      workers = max 1 config.workers;
      slice_shots = max 1 config.slice_shots;
      degraded_shot_cap = max 1 config.degraded_shot_cap;
    }
  in
  {
    config;
    jobs = Hashtbl.create 64;
    tenants = Hashtbl.create 8;
    next_id = 1;
    dist_cache = Hashtbl.create 16;
    result_cache = Hashtbl.create 32;
    cache_order = Queue.create ();
    s_submitted = 0;
    s_accepted = 0;
    s_completed = 0;
    s_failed = 0;
    s_deadline = 0;
    s_cancelled = 0;
    s_rejected = 0;
    s_rejected_estimate = 0;
    s_degraded = 0;
    s_cache_hits = 0;
    s_shared = 0;
    s_slices = 0;
    exec_log = [];
  }

let tenant_state t name =
  match Hashtbl.find_opt t.tenants name with
  | Some ts -> ts
  | None ->
      let quota =
        Option.value ~default:t.config.default_quota
          (List.assoc_opt name t.config.quotas)
      in
      let quota = { quota with weight = Float.max quota.weight 1e-6 } in
      (* Join at the minimum live virtual time: a newcomer neither starves
         behind long-lived tenants nor banks unbounded credit. *)
      let vmin =
        Hashtbl.fold
          (fun _ ts acc -> Float.min acc ts.vtime)
          t.tenants infinity
      in
      let ts =
        {
          t_name = name;
          quota;
          waiting = Queue.create ();
          active_ids = [];
          running = 0;
          vtime = (if vmin = infinity then 0.0 else vmin);
          t_completed = 0;
        }
      in
      Hashtbl.replace t.tenants name ts;
      ts

let queued_total t =
  Hashtbl.fold (fun _ ts acc -> acc + Queue.length ts.waiting) t.tenants 0

(* ---- histogram / report merging ------------------------------------- *)

let merge_into acc hist =
  List.iter
    (fun (k, v) ->
      Hashtbl.replace acc k
        (v + Option.value ~default:0 (Hashtbl.find_opt acc k)))
    hist

let sorted_hist tbl =
  Hashtbl.fold (fun k v l -> (k, v) :: l) tbl []
  |> List.sort (fun (ka, va) (kb, vb) ->
         match compare vb va with 0 -> compare ka kb | c -> c)

let merge_assoc a b =
  let tbl = Hashtbl.create 8 in
  merge_into tbl a;
  merge_into tbl b;
  sorted_hist tbl

let merge_reports (a : Engine.run_report) (b : Engine.run_report) =
  {
    a with
    Engine.shots = a.Engine.shots + b.Engine.shots;
    gate_applies = merge_assoc a.Engine.gate_applies b.Engine.gate_applies;
    measurements = a.Engine.measurements + b.Engine.measurements;
    wall =
      {
        Engine.analyse_s =
          a.Engine.wall.Engine.analyse_s +. b.Engine.wall.Engine.analyse_s;
        simulate_s =
          a.Engine.wall.Engine.simulate_s +. b.Engine.wall.Engine.simulate_s;
        sample_s =
          a.Engine.wall.Engine.sample_s +. b.Engine.wall.Engine.sample_s;
      };
    resilience =
      {
        (* A threaded injector reports lifetime-cumulative fire counts, so
           the latest slice already covers the earlier ones. *)
        Engine.faults_injected = b.Engine.resilience.Engine.faults_injected;
        retries =
          a.Engine.resilience.Engine.retries
          + b.Engine.resilience.Engine.retries;
        faulted_shots =
          a.Engine.resilience.Engine.faulted_shots
          + b.Engine.resilience.Engine.faulted_shots;
        backoff_ns =
          a.Engine.resilience.Engine.backoff_ns
          + b.Engine.resilience.Engine.backoff_ns;
        degraded =
          (match a.Engine.resilience.Engine.degraded with
          | Some _ as d -> d
          | None -> b.Engine.resilience.Engine.degraded);
      };
  }

let batched_report job (a : active) dist ~shared =
  let measured_qubits =
    Array.fold_left
      (fun n m -> if m then n + 1 else n)
      0 dist.Engine.dist_measured
  in
  {
    Engine.plan = Engine.Sampled;
    plan_reason =
      (if shared then
         "terminal unconditioned measurements (service: shared distribution)"
       else "terminal unconditioned measurements (service: batched sampling)");
    shots = a.done_shots;
    seed = job.spec.Job_spec.seed;
    qubit_count = Circuit.qubit_count job.circuit;
    instruction_count = List.length (Circuit.instructions job.circuit);
    gate_applies = dist.Engine.dist_gate_applies;
    measurements = a.done_shots * measured_qubits;
    wall = { Engine.analyse_s = 0.0; simulate_s = 0.0; sample_s = 0.0 };
    resilience = Engine.no_resilience;
    fusion = dist.Engine.dist_fusion;
    cache =
      { Engine.cache_hits = 0; cache_shared = (if shared then 1 else 0) };
  }

let apply_degraded_note job (r : Engine.run_report) =
  match job.degraded_note with
  | None -> r
  | Some note ->
      let degraded =
        match r.Engine.resilience.Engine.degraded with
        | None -> Some note
        | Some existing -> Some (existing ^ "; " ^ note)
      in
      {
        r with
        Engine.resilience = { r.Engine.resilience with Engine.degraded };
      }

(* ---- result cache ---------------------------------------------------- *)

let cache_store t key outcome =
  if t.config.cache_capacity > 0 then begin
    if not (Hashtbl.mem t.result_cache key) then begin
      Queue.add key t.cache_order;
      if Queue.length t.cache_order > t.config.cache_capacity then
        Hashtbl.remove t.result_cache (Queue.pop t.cache_order)
    end;
    Hashtbl.replace t.result_cache key outcome
  end

let cache_hit_outcome (cached : Runner.outcome) =
  {
    cached with
    Runner.report =
      {
        cached.Runner.report with
        Engine.cache =
          {
            cached.Runner.report.Engine.cache with
            Engine.cache_hits = 1;
          };
      };
  }

(* ---- admission ------------------------------------------------------- *)

let degrade t (spec : Job_spec.t) =
  match spec.Job_spec.route with
  | Job_spec.Compiled
      ({ mode = Compiler.Real; technology = Some _; _ } as c) ->
      ( {
          spec with
          Job_spec.route =
            Job_spec.Compiled
              { c with mode = Compiler.Realistic; technology = None };
        },
        "service overload: micro-architecture degraded to realistic QX" )
  | _ ->
      let cap = t.config.degraded_shot_cap in
      if spec.Job_spec.shots > cap then
        ( { spec with Job_spec.shots = cap },
          Printf.sprintf "service overload: shot budget capped to %d" cap )
      else (spec, "service overload: admitted under degraded policy")

(* ---- the admission oracle -------------------------------------------- *)

(* Static resource estimate against the configured caps
   (docs/estimate.md): O(program body), no simulation — cheap enough that
   qxd runs it on every inbox entry before claiming ({!preflight}). The
   memory cap is a hard reject; a blown time cap degrades direct jobs by
   capping their shot budget (re-estimated, since the planner's choice is
   shots-dependent) and rejects only when even one shot cannot fit. *)
let resource_error ~resource ~needed ~limit est =
  Error.make ~site:"Service.admission"
    ~context:
      [
        ("plan", Engine.plan_to_string est.Qca_analysis.Estimate.plan);
        ("qubits", string_of_int est.Qca_analysis.Estimate.qubits);
      ]
    (Error.Resource_exceeded { resource; needed; limit })

let admission t spec =
  let open Qca_analysis.Estimate in
  let cap_bytes = t.config.admission_max_bytes in
  let cap_ns = t.config.admission_max_ns in
  if cap_bytes <= 0.0 && cap_ns <= 0.0 then Ok (spec, None)
  else
    match Job_spec.estimate spec with
    | Error _ ->
        (* Unparseable payload: let resolve report the syntax error. *)
        Ok (spec, None)
    | Ok est ->
        if cap_bytes > 0.0 && est.state_bytes > cap_bytes then
          Error
            (resource_error ~resource:"memory-bytes" ~needed:est.state_bytes
               ~limit:cap_bytes est)
        else if cap_ns > 0.0 && est.sim_ns > cap_ns then begin
          let reject () =
            Error
              (resource_error ~resource:"sim-ns" ~needed:est.sim_ns
                 ~limit:cap_ns est)
          in
          match spec.Job_spec.route with
          | Job_spec.Direct when spec.Job_spec.shots > 1 ->
              let capped =
                max 1
                  (int_of_float
                     (float_of_int spec.Job_spec.shots *. cap_ns /. est.sim_ns))
              in
              let spec' = { spec with Job_spec.shots = capped } in
              (match Job_spec.estimate spec' with
              | Ok est' when est'.sim_ns <= cap_ns ->
                  Ok
                    ( spec',
                      Some
                        (Printf.sprintf
                           "admission estimate: shot budget capped to %d"
                           capped) )
              | Ok _ | Error _ -> reject ())
          | _ -> reject ()
        end
        else Ok (spec, None)

let preflight t spec =
  match admission t spec with
  | Ok _ -> Ok ()
  | Error e ->
      t.s_submitted <- t.s_submitted + 1;
      t.s_rejected <- t.s_rejected + 1;
      t.s_rejected_estimate <- t.s_rejected_estimate + 1;
      Trace.add_counter "service.rejected_estimate" 1;
      Error e

let submit t ~tenant spec =
  t.s_submitted <- t.s_submitted + 1;
  match Job_spec.resolve spec with
  | Error e ->
      t.s_rejected <- t.s_rejected + 1;
      Error e
  | Ok circuit -> (
      let ts = tenant_state t tenant in
      let digest = Job_spec.digest circuit in
      let key = Job_spec.cache_key spec circuit in
      let id = t.next_id in
      let make_job spec note phase =
        { id; tenant; spec; circuit; digest; key; degraded_note = note; phase }
      in
      let admit job =
        t.next_id <- id + 1;
        Hashtbl.replace t.jobs id job;
        Ok { h_id = id; h_tenant = tenant }
      in
      match key with
      | Some k when Hashtbl.mem t.result_cache k ->
          (* Cache hits cost nothing: served immediately, even under
             overload, and never consume queue capacity. *)
          let outcome = cache_hit_outcome (Hashtbl.find t.result_cache k) in
          t.s_cache_hits <- t.s_cache_hits + 1;
          t.s_completed <- t.s_completed + 1;
          ts.t_completed <- ts.t_completed + 1;
          Trace.add_counter "service.cache_hit" 1;
          admit (make_job spec None (Finished (Ok outcome)))
      | _ -> (
          match admission t spec with
          | Error e ->
              t.s_rejected <- t.s_rejected + 1;
              t.s_rejected_estimate <- t.s_rejected_estimate + 1;
              Trace.add_counter "service.rejected_estimate" 1;
              Error e
          | Ok (spec, estimate_note) ->
              if estimate_note <> None then begin
                t.s_degraded <- t.s_degraded + 1;
                Trace.add_counter "service.degraded" 1
              end;
              let waiting_here = Queue.length ts.waiting in
              if waiting_here >= ts.quota.max_queued then begin
                t.s_rejected <- t.s_rejected + 1;
                Error
                  (Error.make ~site:"Service.submit"
                     (Error.Quota_exceeded
                        {
                          tenant;
                          queued = waiting_here;
                          limit = ts.quota.max_queued;
                        }))
              end
              else
                let backlog = queued_total t in
                if backlog >= t.config.max_queue then begin
                  t.s_rejected <- t.s_rejected + 1;
                  Error
                    (Error.make ~site:"Service.submit"
                       (Error.Overloaded
                          { queued = backlog; capacity = t.config.max_queue }))
                end
                else begin
                  let spec, note =
                    if backlog >= t.config.degrade_above then begin
                      t.s_degraded <- t.s_degraded + 1;
                      Trace.add_counter "service.degraded" 1;
                      let spec, n = degrade t spec in
                      (spec, Some n)
                    end
                    else (spec, None)
                  in
                  let note =
                    match (estimate_note, note) with
                    | Some a, Some b -> Some (a ^ "; " ^ b)
                    | Some a, None -> Some a
                    | None, n -> n
                  in
                  t.s_accepted <- t.s_accepted + 1;
                  Queue.add id ts.waiting;
                  admit (make_job spec note Waiting)
                end))

(* ---- execution ------------------------------------------------------- *)

let classify t job =
  match job.spec.Job_spec.route with
  | Job_spec.Compiled _ -> Atomic
  | Job_spec.Direct ->
      if job.spec.Job_spec.fault_rate <> None then Atomic
      else if
        job.spec.Job_spec.noise <> None
        || (match job.spec.Job_spec.plan with
           | Some (Engine.Trajectory | Engine.Clifford) -> true
           | Some Engine.Sampled -> false
           | None ->
               (* Consult the planner: a job it would run per-shot (tableau
                  or state-vector trajectories) must be Sliced, or the
                  service's sampled semantics would diverge from a solo
                  [Engine.run] of the same spec. [clifford_wins] is monotone
                  in shots, so slicing never flips the plan mid-job. *)
               (match
                  Engine.analyse ~shots:job.spec.Job_spec.shots job.circuit
                with
               | Engine.Sampled, _ -> false
               | (Engine.Trajectory | Engine.Clifford), _ -> true))
      then Sliced
      else (
        match Hashtbl.find_opt t.dist_cache job.digest with
        | Some dist ->
            t.s_shared <- t.s_shared + 1;
            Trace.add_counter "service.shared_analysis" 1;
            Batched { dist; shared = true }
        | None -> (
            match
              Engine.sampled_distribution ~fusion:job.spec.Job_spec.fusion
                job.circuit
            with
            | Some dist ->
                Hashtbl.replace t.dist_cache job.digest dist;
                Batched { dist; shared = false }
            | None -> Sliced))

let activate t job =
  let seed =
    match job.spec.Job_spec.seed with
    | Some s -> s
    | None ->
        (* Deterministic per-job stream for unseeded jobs: the service as
           a whole stays reproducible for a given submission order. *)
        (t.config.service_seed + (job.id * 0x9E3779B1)) land max_int
  in
  job.phase <-
    Active
      {
        kind = classify t job;
        rng = Rng.create seed;
        faults = Job_spec.faults job.spec;
        started_at = Unix.gettimeofday ();
        remaining = job.spec.Job_spec.shots;
        done_shots = 0;
        acc = Hashtbl.create 16;
        acc_report = None;
        a_compiled = None;
        a_microarch = None;
      }

(* Take the waiting job with the lowest (priority, id): spec priority
   orders a tenant's own queue, submission order breaks ties. *)
let start_next t ts =
  let pending = Queue.to_seq ts.waiting |> List.of_seq in
  let rank id =
    let job = Hashtbl.find t.jobs id in
    (job.spec.Job_spec.priority, id)
  in
  let best =
    List.fold_left
      (fun best id ->
        match best with
        | None -> Some id
        | Some b -> if rank id < rank b then Some id else best)
      None pending
  in
  match best with
  | None -> ()
  | Some id -> (
      Queue.clear ts.waiting;
      List.iter
        (fun i -> if i <> id then Queue.add i ts.waiting)
        pending;
      let job = Hashtbl.find t.jobs id in
      match job.phase with
      | Waiting ->
          activate t job;
          ts.running <- ts.running + 1;
          ts.active_ids <- ts.active_ids @ [ id ]
      | _ -> ())

let fail_job t ts job e =
  job.phase <- Finished (Error e);
  ts.running <- ts.running - 1;
  t.s_failed <- t.s_failed + 1

let finish_job t ts job (a : active) =
  let report =
    match (a.kind, a.acc_report) with
    | Batched { dist; shared }, _ -> batched_report job a dist ~shared
    | _, Some r -> r
    | _, None ->
        (* shots >= 1 is enforced by Job_spec.make, so at least one slice
           ran; still, never crash the scheduler over a report. *)
        batched_report job a
          {
            Engine.probabilities = [||];
            dist_measured = [||];
            dist_fusion = Engine.no_fusion;
            dist_gate_applies = [];
          }
          ~shared:false
  in
  let report = apply_degraded_note job report in
  let outcome =
    {
      Runner.histogram = sorted_hist a.acc;
      report;
      compiled = a.a_compiled;
      microarch_stats = a.a_microarch;
    }
  in
  job.phase <- Finished (Ok outcome);
  ts.running <- ts.running - 1;
  ts.t_completed <- ts.t_completed + 1;
  t.s_completed <- t.s_completed + 1;
  match job.key with
  | Some key when job.degraded_note = None -> cache_store t key outcome
  | _ -> ()

let exec_slice t ts job (a : active) =
  Qca_util.Fault.crash_point "slice";
  let slice =
    match a.kind with
    | Atomic -> a.remaining
    | Batched _ | Sliced -> min a.remaining t.config.slice_shots
  in
  let span =
    if Trace.enabled () then
      Trace.begin_span "service.slice"
        ~attrs:
          [
            ("tenant", Trace.String ts.t_name);
            ("job", Trace.Int job.id);
            ("shots", Trace.Int slice);
          ]
    else Trace.null_span
  in
  (match a.kind with
  | Batched { dist; _ } ->
      let h =
        Engine.sample_histogram ~probabilities:dist.Engine.probabilities
          ~measured:dist.Engine.dist_measured ~rng:a.rng ~shots:slice
      in
      merge_into a.acc h;
      a.remaining <- a.remaining - slice;
      a.done_shots <- a.done_shots + slice
  | Sliced -> (
      let spec = { job.spec with Job_spec.shots = slice } in
      match Runner.run ~rng:a.rng ?faults:a.faults spec with
      | Error e -> fail_job t ts job e
      | Ok o ->
          merge_into a.acc o.Runner.histogram;
          a.acc_report <-
            Some
              (match a.acc_report with
              | None -> o.Runner.report
              | Some r -> merge_reports r o.Runner.report);
          a.remaining <- a.remaining - slice;
          a.done_shots <- a.done_shots + slice)
  | Atomic -> (
      match Runner.run ~rng:a.rng ?faults:a.faults job.spec with
      | Error e -> fail_job t ts job e
      | Ok o ->
          merge_into a.acc o.Runner.histogram;
          a.acc_report <- Some o.Runner.report;
          a.a_compiled <- o.Runner.compiled;
          a.a_microarch <- o.Runner.microarch_stats;
          a.done_shots <- a.done_shots + a.remaining;
          a.remaining <- 0));
  ts.vtime <- ts.vtime +. (float_of_int slice /. ts.quota.weight);
  t.s_slices <- t.s_slices + 1;
  t.exec_log <- (ts.t_name, job.id) :: t.exec_log;
  Trace.end_span span

(* Cooperative deadline enforcement: the budget is checked at every slice
   boundary, before the slice runs, so a job can overshoot by at most one
   slice of work already in flight — never start new work past its
   deadline. [deadline_ms = 0] therefore fails deterministically at the
   first boundary (the form the tests pin). *)
let deadline_expired job (a : active) =
  match job.spec.Job_spec.deadline_ms with
  | None -> None
  | Some deadline_ms ->
      let elapsed_ms =
        int_of_float ((Unix.gettimeofday () -. a.started_at) *. 1000.0)
      in
      if elapsed_ms >= deadline_ms then Some (deadline_ms, elapsed_ms)
      else None

let run_one t ts =
  if ts.active_ids = [] then start_next t ts;
  match ts.active_ids with
  | [] -> ()
  | id :: rest -> (
      let job = Hashtbl.find t.jobs id in
      match job.phase with
      | Active a -> (
          match deadline_expired job a with
          | Some (deadline_ms, elapsed_ms) ->
              t.s_deadline <- t.s_deadline + 1;
              Trace.add_counter "service.deadline_exceeded" 1;
              fail_job t ts job
                (Error.make ~site:"Service.step"
                   ~context:
                     [
                       ("job", string_of_int job.id); ("tenant", ts.t_name);
                       ("done_shots", string_of_int a.done_shots);
                     ]
                   (Error.Deadline_exceeded { deadline_ms; elapsed_ms }));
              ts.active_ids <- rest
          | None -> (
              exec_slice t ts job a;
              match job.phase with
              | Active a when a.remaining <= 0 ->
                  finish_job t ts job a;
                  ts.active_ids <- rest
              | Active _ -> ts.active_ids <- rest @ [ id ]
              | _ -> ts.active_ids <- rest))
      | _ -> ts.active_ids <- rest)

let eligible ts =
  ts.active_ids <> []
  || ((not (Queue.is_empty ts.waiting)) && ts.running < ts.quota.max_running)

(* The WFQ decision: serve the eligible tenant with the smallest virtual
   time; ties break on the tenant name so scheduling never depends on
   hash-table iteration order. *)
let pick t =
  Hashtbl.fold
    (fun _ ts best ->
      if not (eligible ts) then best
      else
        match best with
        | None -> Some ts
        | Some b ->
            if
              ts.vtime < b.vtime
              || (ts.vtime = b.vtime && ts.t_name < b.t_name)
            then Some ts
            else best)
    t.tenants None

let step t =
  let did = ref false in
  (try
     for _ = 1 to t.config.workers do
       match pick t with
       | None -> raise Exit
       | Some ts ->
           did := true;
           run_one t ts
     done
   with Exit -> ());
  !did

let rec drain t = if step t then drain t

(* ---- client surface -------------------------------------------------- *)

let poll t h =
  match Hashtbl.find_opt t.jobs h.h_id with
  | None ->
      Failed
        (Error.make ~site:"Service.poll"
           ~context:[ ("job", string_of_int h.h_id) ]
           (Error.Invalid "unknown job handle"))
  | Some job -> (
      match job.phase with
      | Waiting ->
          let pos =
            Hashtbl.fold
              (fun _ j n ->
                match j.phase with
                | Waiting when j.id < job.id -> n + 1
                | _ -> n)
              t.jobs 0
          in
          Queued pos
      | Active a ->
          Running
            {
              done_shots = a.done_shots;
              total_shots = job.spec.Job_spec.shots;
            }
      | Finished (Ok o) -> Done o
      | Finished (Error e) -> Failed e
      | Cancelled_job -> Cancelled)

let rec await t h =
  match poll t h with
  | Done o -> Ok o
  | Failed e -> Error e
  | Cancelled ->
      Error
        (Error.make ~site:"Service.await"
           (Error.Cancelled (Printf.sprintf "job %d" h.h_id)))
  | Queued _ | Running _ ->
      if step t then await t h
      else
        Error
          (Error.make ~site:"Service.await"
             ~context:[ ("job", string_of_int h.h_id) ]
             (Error.Invalid "service stalled: job is not runnable"))

let cancel t h =
  match Hashtbl.find_opt t.jobs h.h_id with
  | None -> false
  | Some job -> (
      match job.phase with
      | Finished _ | Cancelled_job -> false
      | Waiting ->
          let ts = tenant_state t job.tenant in
          let keep =
            Queue.to_seq ts.waiting |> List.of_seq
            |> List.filter (fun i -> i <> job.id)
          in
          Queue.clear ts.waiting;
          List.iter (fun i -> Queue.add i ts.waiting) keep;
          job.phase <- Cancelled_job;
          t.s_cancelled <- t.s_cancelled + 1;
          true
      | Active _ ->
          let ts = tenant_state t job.tenant in
          ts.active_ids <- List.filter (fun i -> i <> job.id) ts.active_ids;
          ts.running <- ts.running - 1;
          job.phase <- Cancelled_job;
          t.s_cancelled <- t.s_cancelled + 1;
          true)

(* ---- observability --------------------------------------------------- *)

type stats = {
  submitted : int;
  accepted : int;
  completed : int;
  failed : int;
  deadline_exceeded : int;
  cancelled : int;
  rejected : int;
  rejected_estimate : int;
  degraded : int;
  cache_hits : int;
  shared_analyses : int;
  slices : int;
  per_tenant : (string * int) list;
}

let stats t =
  let per_tenant =
    Hashtbl.fold (fun name ts acc -> (name, ts.t_completed) :: acc) t.tenants []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    submitted = t.s_submitted;
    accepted = t.s_accepted;
    completed = t.s_completed;
    failed = t.s_failed;
    deadline_exceeded = t.s_deadline;
    cancelled = t.s_cancelled;
    rejected = t.s_rejected;
    rejected_estimate = t.s_rejected_estimate;
    degraded = t.s_degraded;
    cache_hits = t.s_cache_hits;
    shared_analyses = t.s_shared;
    slices = t.s_slices;
    per_tenant;
  }

let stats_to_json t =
  let s = stats t in
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "{\"service\":{\"submitted\":%d,\"accepted\":%d,\"completed\":%d,\"failed\":%d,\"deadline_exceeded\":%d,\"cancelled\":%d,\"rejected\":%d,\"rejected_estimate\":%d,\"degraded\":%d,\"cache_hits\":%d,\"shared_analyses\":%d,\"slices\":%d,\"tenants\":{"
    s.submitted s.accepted s.completed s.failed s.deadline_exceeded
    s.cancelled s.rejected s.rejected_estimate s.degraded s.cache_hits
    s.shared_analyses s.slices;
  List.iteri
    (fun i (name, completed) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%d" (String.escaped name) completed)
    s.per_tenant;
  Buffer.add_string buf "}}}";
  Buffer.contents buf

let execution_log t = List.rev t.exec_log
