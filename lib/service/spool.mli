(** File-based submit/status/cancel protocol between [qxc] and [qxd],
    with a durable lifecycle journal.

    No network: a spool directory is the queue. [qxc submit] drops a job
    file into [DIR/inbox] (written to [DIR/tmp] first, then renamed, so
    the daemon never sees a partial file); [qxd serve] {!claim}s inbox
    entries into [DIR/active] (the journal: the job file plus a [.claim]
    sidecar carrying the daemon pid, attempt count and claim time), feeds
    them to {!Service}, and writes one JSON line per job to
    [DIR/results/<id>.json] before clearing the journal entry; [qxc
    cancel] drops a marker into [DIR/cancel]. A daemon crash leaves the
    claimed job in [active/]; on restart {!recover} re-executes it —
    bit-identical to an uncrashed run, because specs are fully seeded —
    or retires it to [DIR/failed] once it exhausts the attempt cap.
    Everything is plain text so a spool survives inspection and
    hand-editing ([docs/service.md] documents the format and the
    journal's state machine). *)

(** The lifecycle, as directories ([docs/service.md]):

    {v
    inbox/   submitted, unclaimed            (qxc submit)
    active/  claimed by a daemon, running    (journal: .job + .claim)
    results/ terminal: one JSON line         (the commit point)
    failed/  terminal: poison, attempt cap   (crash-looping job files)
    cancel/  cancellation markers            (cleared once consumed)
    tmp/     staging for atomic renames      (swept at daemon startup)
    v}

    A job file is a [key=value] header, a [---] separator, then the cQASM
    program:

    {v
    tenant=alice
    label=bell
    shots=1000
    seed=7
    ---
    version 1.0
    qubits 2
    ...
    v}

    Header keys mirror {!Qca.Job_spec.t} (and the [qxc] flags):
    [tenant], [label], [shots], [seed], [noise], [trajectory], [fusion],
    [fault-rate], [fault-seed], [max-retries], [priority], and the route
    triple [platform]/[mode]/[ladder] ([platform] absent means the direct
    engine route). Unknown keys are a structured error, not a warning. *)

type entry = {
  entry_id : string;  (** Zero-padded sequence number, e.g. ["000007"]. *)
  tenant : string;
  spec : Qca.Job_spec.t;
}

(** {2 Shared name parsing}

    One vocabulary for platform/mode names across [qxc] flags, [qxd]
    flags and spool headers. *)

val platform_of_string :
  string -> int -> (Qca_compiler.Platform.t, string) result
(** [platform_of_string name qubits]: [superconducting],
    [semiconducting] or [perfect] (sized to [qubits]). *)

val mode_of_string : string -> (Qca_compiler.Compiler.mode, string) result

val technology_of_platform : string -> Qca_microarch.Controller.technology
(** The micro-architecture configuration conventionally paired with a
    platform name ([semiconducting] or the superconducting default). *)

val route_of_names :
  ?router:Qca_compiler.Mapping.strategy ->
  platform:string option ->
  mode:string ->
  ladder:bool ->
  qubits:int ->
  unit ->
  (Qca.Job_spec.route, string) result
(** The route a [--platform]/[--mode]/[--ladder] flag triple denotes:
    [None] platform is the direct engine route; Real mode picks up the
    platform's paired technology. [router] (default
    {!Qca_compiler.Mapping.Sabre}) is the [--route] routing strategy. *)

(** {2 Spool directories} *)

val init : string -> unit
(** Create the spool skeleton ([inbox/], [active/], [results/],
    [failed/], [cancel/], [tmp/]); idempotent. *)

val sweep_tmp : dir:string -> int
(** Remove stale staging files left in [tmp/] by a crashed writer,
    returning how many were removed. Called at daemon startup — never
    concurrently with live submitters. *)

val submit :
  ?durable:bool ->
  dir:string ->
  tenant:string ->
  Qca.Job_spec.t ->
  (string, Qca_util.Error.t) result
(** Serialise a spec into [inbox/], returning the new job id. The payload
    is resolved first (a spec that cannot run is rejected at submit
    time). With [~durable:true] the job file and the directories around
    the rename are fsynced, so the submission survives power loss —
    rename-without-fsync alone does not (default [false]: tests and
    benches stay fast). *)

val pending : dir:string -> (entry, Qca_util.Error.t) result list
(** Inbox entries in id order; a malformed file surfaces as its own
    [Error] (the daemon rejects it without stopping the queue). *)

val pending_ids : dir:string -> (string * (entry, Qca_util.Error.t) result) list
(** Like {!pending}, but each entry is paired with the id derived from
    its filename — available even when decoding failed, so the daemon
    can claim and reject a malformed file instead of leaving it queued
    forever. *)

val in_inbox : dir:string -> string -> bool
(** The job file is still waiting in the inbox. *)

val consume : dir:string -> string -> unit
(** Remove a job file from the inbox without journaling it. Retained for
    tests and one-shot tooling; the daemon uses {!claim} so a crash can
    never lose the job. *)

val request_cancel : dir:string -> string -> bool
(** Drop a cancel marker for a job id. [false] when the job already has a
    result (too late to cancel). *)

val cancel_requested : dir:string -> string -> bool

val clear_cancel : dir:string -> string -> unit
(** Remove a consumed cancel marker (after the cancellation has been
    published) so markers do not accumulate in [cancel/]. *)

val write_result :
  ?durable:bool -> dir:string -> id:string -> string -> unit
(** Publish a job's one-line JSON result (atomic rename, like {!submit};
    same [durable] semantics). The result file is the job's {e commit
    point}: once it exists the job is terminal, and recovery will never
    re-execute it. Kill sites [publish-pre]/[publish-post] surround the
    write ({!Qca_util.Fault.crash_point}). *)

val read_result : dir:string -> string -> string option

(** {2 The lifecycle journal} *)

type claim = {
  claim_pid : int;  (** Daemon that claimed the job. *)
  attempt : int;  (** 1 on first claim; bumped by {!recover}. *)
  claimed_at_ms : int;  (** Unix epoch milliseconds. *)
}

val claim : dir:string -> pid:int -> string -> bool
(** Atomically move a job from [inbox/] to [active/] and journal the
    claim. [false] when the job is no longer in the inbox. Kill sites:
    [claim-pre] (before the rename — the job survives in the inbox) and
    [claim-post] (after — the job survives in the journal). *)

val complete : dir:string -> string -> unit
(** Remove a job's journal entry (after its result was published or its
    cancellation recorded); idempotent. *)

val retire : dir:string -> string -> unit
(** Move a journaled job file to [failed/] and drop its claim: the
    resting place of poison jobs that crash the daemon on every
    attempt. *)

val active : dir:string -> string list
(** Ids currently journaled in [active/], in id order. *)

val in_active : dir:string -> string -> claim option
(** The job's claim, if it is journaled ([attempt = 0] when the claim
    sidecar is missing — a crash landed between rename and claim
    write). *)

val read_claim : dir:string -> string -> claim option

type recovered =
  | Replay of {
      id : string;
      entry : (entry, Qca_util.Error.t) result;
      attempt : int;
    }
      (** Orphaned: re-claimed by this daemon ([attempt] already bumped);
          re-execute it. Fully-seeded specs make the replay bit-identical
          to the run the crash destroyed. *)
  | Already_published of string
      (** The crash hit after the result write but before journal
          cleanup; the journal entry has been cleared, nothing runs. *)
  | Poison of { id : string; attempts : int; tenant : string; label : string }
      (** The job exhausted the attempt cap; its file has been moved to
          [failed/]. The caller publishes a structured
          {!Qca_util.Error.Crash_loop} result. *)
  | Busy of { id : string; owner : int }
      (** A live daemon (per its claim pid) still owns the job; left
          untouched. *)

val recover :
  dir:string -> pid:int -> max_attempts:int -> recovered list
(** Walk [active/] in id order and classify every journal entry, taking
    the recovery action described on each constructor. Crash-safe to
    crash again during: every step is an atomic rename or remove. *)

(** {2 Daemon heartbeat} *)

type heartbeat = {
  hb_pid : int;
  hb_state : string;  (** ["serving"], ["draining"], ["drained"], ... *)
  hb_started_at_ms : int;
  hb_updated_at_ms : int;
}

val write_heartbeat :
  dir:string -> pid:int -> state:string -> started_at_ms:int -> unit
(** Atomically (re)write [DIR/daemon.json]. *)

val read_heartbeat : dir:string -> heartbeat option

val pid_alive : int -> bool
(** Whether a process with this pid exists ([kill 0] probe). *)

val now_ms : unit -> int
(** Unix epoch milliseconds (the clock used by claims/heartbeats). *)

(** {2 Serialisation} (exposed for tests) *)

val encode : tenant:string -> Qca.Job_spec.t -> (string, Qca_util.Error.t) result
val decode : id:string -> string -> (entry, Qca_util.Error.t) result
