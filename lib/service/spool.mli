(** File-based submit/status/cancel protocol between [qxc] and [qxd].

    No network: a spool directory is the queue. [qxc submit] drops a job
    file into [DIR/inbox] (written to [DIR/tmp] first, then renamed, so
    the daemon never sees a partial file); [qxd serve] consumes inbox
    entries, feeds them to {!Service}, and writes one JSON line per job to
    [DIR/results/<id>.json]; [qxc cancel] drops a marker into
    [DIR/cancel]. Everything is plain text so a spool survives inspection
    and hand-editing ([docs/service.md] documents the format).

    A job file is a [key=value] header, a [---] separator, then the cQASM
    program:

    {v
    tenant=alice
    label=bell
    shots=1000
    seed=7
    ---
    version 1.0
    qubits 2
    ...
    v}

    Header keys mirror {!Qca.Job_spec.t} (and the [qxc] flags):
    [tenant], [label], [shots], [seed], [noise], [trajectory], [fusion],
    [fault-rate], [fault-seed], [max-retries], [priority], and the route
    triple [platform]/[mode]/[ladder] ([platform] absent means the direct
    engine route). Unknown keys are a structured error, not a warning. *)

type entry = {
  entry_id : string;  (** Zero-padded sequence number, e.g. ["000007"]. *)
  tenant : string;
  spec : Qca.Job_spec.t;
}

(** {2 Shared name parsing}

    One vocabulary for platform/mode names across [qxc] flags, [qxd]
    flags and spool headers. *)

val platform_of_string :
  string -> int -> (Qca_compiler.Platform.t, string) result
(** [platform_of_string name qubits]: [superconducting],
    [semiconducting] or [perfect] (sized to [qubits]). *)

val mode_of_string : string -> (Qca_compiler.Compiler.mode, string) result

val technology_of_platform : string -> Qca_microarch.Controller.technology
(** The micro-architecture configuration conventionally paired with a
    platform name ([semiconducting] or the superconducting default). *)

val route_of_names :
  platform:string option ->
  mode:string ->
  ladder:bool ->
  qubits:int ->
  (Qca.Job_spec.route, string) result
(** The route a [--platform]/[--mode]/[--ladder] flag triple denotes:
    [None] platform is the direct engine route; Real mode picks up the
    platform's paired technology. *)

(** {2 Spool directories} *)

val init : string -> unit
(** Create the spool skeleton ([inbox/], [results/], [cancel/], [tmp/]);
    idempotent. *)

val submit :
  dir:string ->
  tenant:string ->
  Qca.Job_spec.t ->
  (string, Qca_util.Error.t) result
(** Serialise a spec into [inbox/], returning the new job id. The payload
    is resolved first (a spec that cannot run is rejected at submit
    time). *)

val pending : dir:string -> (entry, Qca_util.Error.t) result list
(** Inbox entries in id order; a malformed file surfaces as its own
    [Error] (the daemon rejects it without stopping the queue). *)

val in_inbox : dir:string -> string -> bool
(** The job file is still waiting in the inbox. *)

val consume : dir:string -> string -> unit
(** Remove a job file from the inbox (after the daemon has taken it). *)

val request_cancel : dir:string -> string -> bool
(** Drop a cancel marker for a job id. [false] when the job already has a
    result (too late to cancel). *)

val cancel_requested : dir:string -> string -> bool

val write_result : dir:string -> id:string -> string -> unit
(** Publish a job's one-line JSON result (atomic rename, like
    {!submit}). *)

val read_result : dir:string -> string -> string option

(** {2 Serialisation} (exposed for tests) *)

val encode : tenant:string -> Qca.Job_spec.t -> (string, Qca_util.Error.t) result
val decode : id:string -> string -> (entry, Qca_util.Error.t) result
