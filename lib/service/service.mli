(** Multi-tenant quantum job service: the long-running front door of the
    stack ([docs/service.md]).

    Clients {!submit} a {!Qca.Job_spec.t} under a tenant name and get back
    a {!handle}; {!poll}, {!await} and {!cancel} operate on handles. Jobs
    are executed by a pool of virtual worker slots driven by {!step} /
    {!drain}: scheduling is {e cooperative and deterministic} — amplitude-
    level parallelism stays in the engine's domain pool
    ({!Qca_util.Parallel}), while this layer multiplexes {e jobs} over the
    simulated QPU the way a real accelerator service multiplexes a serial
    quantum device.

    {2 Scheduling}

    Weighted fair queuing over per-tenant virtual time: each slice of work
    advances its tenant's clock by [cost / weight], and the scheduler
    always serves the tenant with the smallest clock, so a tenant with
    weight 2 receives twice the throughput of a tenant with weight 1 and
    no tenant starves. Direct-route jobs are {e sliced} ([slice_shots]
    shots per scheduler visit), so long jobs are preempted at slice
    boundaries; compiled/micro-architecture jobs execute atomically and
    pay their full cost on the tenant clock.

    {2 Batching and caching}

    Jobs whose resolved circuits share a {!Qca.Job_spec.digest} share one
    {!Qca_qx.Engine.sampled_distribution}: the state vector is simulated
    once and every job samples its own shots (with its own seed) from the
    shared distribution — bit-identical to running each job alone.
    Seeded jobs are additionally served from a result cache keyed on
    {!Qca.Job_spec.cache_key} (circuit digest, route, seed, shots, noise,
    fault policy). Hits and shares surface in
    {!Qca_qx.Engine.cache_stats} and the service {!stats}.

    {2 Backpressure}

    Admission walks a degradation ladder before refusing work: when the
    backlog passes [degrade_above], new micro-architecture jobs are
    downgraded to realistic-QX simulation and direct jobs have their shots
    capped (recorded in [report.resilience.degraded]); when it passes
    [max_queue], submission fails with a structured
    {!Qca_util.Error.Overloaded}. Per-tenant [max_queued] quotas fail with
    {!Qca_util.Error.Quota_exceeded}. *)

type quota = {
  max_running : int;  (** Concurrent started jobs per tenant. *)
  max_queued : int;  (** Waiting jobs per tenant before quota rejection. *)
  weight : float;  (** Fair-share weight (> 0); default 1.0. *)
}

type config = {
  workers : int;  (** Worker slots per {!step} (clamped to >= 1). *)
  max_queue : int;  (** Global waiting-job capacity (reject beyond). *)
  degrade_above : int;  (** Backlog at which admission degrades new jobs. *)
  slice_shots : int;  (** Preemption granularity for direct-route jobs. *)
  degraded_shot_cap : int;  (** Shot cap applied to degraded direct jobs. *)
  default_quota : quota;
  quotas : (string * quota) list;  (** Per-tenant overrides. *)
  cache_capacity : int;  (** Result-cache entries (0 disables caching). *)
  service_seed : int;
      (** Derives per-job RNG streams for jobs without an explicit seed. *)
  admission_max_bytes : float;
      (** Admission-oracle cap on estimated simulation state memory
          ({!Qca_analysis.Estimate.t.state_bytes}); exceeding it rejects
          the job with {!Qca_util.Error.Resource_exceeded} before any work
          is done. [0.] disables. Default 8 GiB
          ({!Qca_analysis.Estimate.host_bytes_default}). *)
  admission_max_ns : float;
      (** Admission-oracle cap on estimated simulation time
          ({!Qca_analysis.Estimate.t.sim_ns}). Direct jobs over the cap
          are {e degraded} (shot budget capped to fit, recorded in
          [stats.degraded]); jobs that cannot fit even at one shot are
          rejected. [0.] (the default) disables. *)
}

val default_quota : quota
(** [{ max_running = 4; max_queued = 16; weight = 1.0 }] *)

val default_config : config

type t

type handle

val job_id : handle -> int
val job_tenant : handle -> string

type status =
  | Queued of int  (** Waiting; the int is the global queue position. *)
  | Running of { done_shots : int; total_shots : int }
  | Done of Qca.Runner.outcome
  | Failed of Qca_util.Error.t
  | Cancelled

val create : ?config:config -> unit -> t

val submit :
  t -> tenant:string -> Qca.Job_spec.t -> (handle, Qca_util.Error.t) result
(** Admit a job. The payload is resolved now (parse errors are reported
    here, not at execution), the result cache is consulted (hits complete
    immediately and bypass admission control — they cost nothing), then
    the static-estimate oracle ([admission_max_bytes] /
    [admission_max_ns], rejections counted in [stats.rejected_estimate]),
    quota, backpressure-degradation and capacity checks run in that
    order. *)

val preflight : t -> Qca.Job_spec.t -> (unit, Qca_util.Error.t) result
(** The admission oracle alone — the {e pre-claim} gate [qxd serve] runs
    on every inbox entry before {!Qca_service.Spool.claim}: a static
    {!Qca.Job_spec.estimate} against the configured caps, O(program body),
    no simulation and no queue-state consultation. An [Error] (structured
    {!Qca_util.Error.Resource_exceeded}) is accounted in {!stats}
    ([submitted], [rejected], [rejected_estimate]); [Ok] performs no
    accounting — the subsequent {!submit} does it. Degradable jobs (time
    cap, direct route) pass preflight and are degraded at submission. *)

val poll : t -> handle -> status
(** Non-blocking status; never advances execution. *)

val step : t -> bool
(** Run one scheduler tick: up to [workers] slices, each given to the
    eligible tenant with the smallest virtual time. Returns [false] when
    no runnable work exists.

    Deadlines are enforced here, cooperatively: before a job's slice
    runs, its [deadline_ms] budget (wall clock since the job started) is
    checked, and an exhausted budget fails the job with a terminal
    {!Qca_util.Error.Deadline_exceeded} — a job never {e starts} work
    past its deadline, and overshoots by at most the slice already in
    flight. Each slice also passes the [slice] chaos kill point
    ({!Qca_util.Fault.crash_point}, [docs/resilience.md]). *)

val await : t -> handle -> (Qca.Runner.outcome, Qca_util.Error.t) result
(** Drive {!step} until the job completes. Cancelled jobs return a
    {!Qca_util.Error.Cancelled} error. *)

val cancel : t -> handle -> bool
(** Cancel a waiting or running job ([true]); running jobs stop at their
    next slice boundary — work already done is discarded. [false] when the
    job already finished (or was already cancelled). *)

val drain : t -> unit
(** {!step} until idle. *)

type stats = {
  submitted : int;  (** All submission attempts. *)
  accepted : int;  (** Admitted to the queue (cache hits not included). *)
  completed : int;  (** Finished successfully (cache hits included). *)
  failed : int;
  deadline_exceeded : int;
      (** Jobs that ran out of their [deadline_ms] budget at a slice
          boundary (also counted in [failed]). *)
  cancelled : int;
  rejected : int;  (** Refused: overload, quota or unresolvable payload. *)
  rejected_estimate : int;
      (** Subset of [rejected] refused by the static-estimate admission
          oracle ({!Qca_util.Error.Resource_exceeded}), including [qxd]
          pre-claim rejections via {!preflight}. *)
  degraded : int;  (** Admitted via the backpressure degradation ladder. *)
  cache_hits : int;
  shared_analyses : int;
      (** Jobs that reused another job's sampled distribution. *)
  slices : int;  (** Scheduler slices executed. *)
  per_tenant : (string * int) list;  (** Completed jobs per tenant. *)
}

val stats : t -> stats

val stats_to_json : t -> string
(** One-line JSON object (schema in [docs/service.md]). *)

val execution_log : t -> (string * int) list
(** Chronological (tenant, job id) pairs, one per slice: the fairness
    witness used by tests and [qxd serve --verbose]. *)
