module Eqasm = Qca_compiler.Eqasm
module Gate = Qca_circuit.Gate
module State = Qca_qx.State
module Noise = Qca_qx.Noise
module Engine = Qca_qx.Engine
module Rng = Qca_util.Rng
module Qerror = Qca_util.Error
module Fault = Qca_util.Fault
module Resilience = Qca_util.Resilience
module Trace = Qca_util.Trace

(* Default randomness for sessions that pass no [?rng]: one process-wide
   stream that advances across runs (same semantics as Engine.default_rng),
   rather than an identical fresh generator per call. *)
let shared_rng = Rng.create 0xC0DE

type technology = {
  tech_name : string;
  microcode : Microcode.table;
  pulses : Adi.library;
}

let superconducting =
  {
    tech_name = "superconducting";
    microcode = Microcode.superconducting_table;
    pulses = Adi.superconducting_library ();
  }

let semiconducting =
  {
    tech_name = "semiconducting";
    microcode = Microcode.semiconducting_table;
    pulses = Adi.semiconducting_library ();
  }

type trace_event = {
  time_ns : int;
  qubit : int;
  opcode : int;
  pulse_name : string;
  duration_ns : int;
}

type run_stats = {
  total_ns : int;
  bundles_issued : int;
  micro_ops : int;
  peak_queue_depth : int;
  timing_violations : int;
  software_phase_updates : int;
}

type result = {
  outcome : Qca_qx.Sim.outcome;
  trace : trace_event list;
  stats : run_stats;
}

(* Resolve an eQASM mnemonic to the simulator action. *)
type action =
  | Apply of Gate.unitary
  | Apply_rz  (** angle carried by the op *)
  | Do_measure
  | Do_prep
  | No_op

let action_of_mnemonic = function
  | "i" -> No_op
  | "x90" -> Apply Gate.X90
  | "mx90" -> Apply Gate.Xm90
  | "y90" -> Apply Gate.Y90
  | "my90" -> Apply Gate.Ym90
  | "rz" -> Apply_rz
  | "cz" -> Apply Gate.Cz
  | "x" -> Apply Gate.X
  | "y" -> Apply Gate.Y
  | "z" -> Apply Gate.Z
  | "h" -> Apply Gate.H
  | "s" -> Apply Gate.S
  | "sdag" -> Apply Gate.Sdag
  | "t" -> Apply Gate.T
  | "tdag" -> Apply Gate.Tdag
  | "cnot" -> Apply Gate.Cnot
  | "swap" -> Apply Gate.Swap
  | "measz" -> Do_measure
  | "prepz" -> Do_prep
  | other ->
      Qerror.fail ~site:"Controller.action_of_mnemonic" (Qerror.Unknown_mnemonic other)

type session = {
  technology : technology;
  noise : Noise.model;
  rng : Rng.t;
  faults : Fault.t option;
  cycle_ns : int;
  state : State.t;
  classical : int array;
  ideal : bool;
  single_masks : int list array;
  pair_masks : (int * int) list array;
  pool : Timing_queue.pool;
  applies : (string, int) Hashtbl.t;
  mutable measures : int;
  mutable trace : trace_event list;  (* reversed *)
  mutable time_cycles : int;
  mutable bundles : int;
  mutable micro_ops : int;
  mutable phase_updates : int;
  mutable end_ns : int;
}

(* Injected faults are transient: the glitch model is a bit flip or drop on
   one traversal of the pipeline, so a retry of the shot can succeed. The
   check is a bare match + compare when no injector is attached, keeping the
   disabled-path overhead negligible. *)
let fault_fires session site =
  match session.faults with None -> false | Some f -> Fault.fires f site

let start ?(noise = Noise.ideal) ?rng ?faults technology ~qubit_count ~cycle_ns =
  let rng = match rng with Some r -> r | None -> shared_rng in
  {
    technology;
    noise;
    rng;
    faults;
    cycle_ns;
    state = State.create qubit_count;
    classical = Array.make qubit_count (-1);
    ideal = Noise.is_ideal noise;
    single_masks = Array.make 32 [];
    pair_masks = Array.make 32 [];
    pool = Timing_queue.create_pool ~channels:qubit_count;
    applies = Hashtbl.create 16;
    measures = 0;
    trace = [];
    time_cycles = 0;
    bundles = 0;
    micro_ops = 0;
    phase_updates = 0;
    end_ns = 0;
  }

let classical_bit session q = session.classical.(q)
let elapsed_cycles session = session.time_cycles

let pulse_duration session name =
  if name = "idle" then 0
  else
    match Adi.find session.technology.pulses name with
    | Some p ->
        if fault_fires session Fault.Pulse_dropout then
          Qerror.fail ~transient:true ~site:"Controller.pulse_duration"
            (Qerror.Missing_pulse name);
        p.Adi.duration_ns
    | None ->
        Qerror.fail ~site:"Controller.pulse_duration"
          ~context:[ ("technology", session.technology.tech_name) ]
          (Qerror.Missing_pulse name)

let bump_apply session name =
  Hashtbl.replace session.applies name
    (1 + Option.value ~default:0 (Hashtbl.find_opt session.applies name))

let simulate_op session mnemonic angle qubits =
  let state = session.state and rng = session.rng and noise = session.noise in
  let ideal = session.ideal in
  match action_of_mnemonic mnemonic, qubits with
  | Apply u, _ when Gate.arity u = 1 ->
      List.iter
        (fun q ->
          State.apply state u [| q |];
          bump_apply session (Gate.name u);
          if not ideal then Noise.after_gate noise state rng u [| q |])
        qubits
  | Apply u, [ q1; q2 ] ->
      State.apply state u [| q1; q2 |];
      bump_apply session (Gate.name u);
      if not ideal then Noise.after_gate noise state rng u [| q1; q2 |]
  | Apply u, _ ->
      Qerror.fail ~site:"Controller.simulate_op"
        ~context:[ ("operands", string_of_int (List.length qubits)) ]
        (Qerror.Invalid (Printf.sprintf "gate %s got wrong operand count" (Gate.name u)))
  | Apply_rz, _ ->
      let theta = Option.value ~default:0.0 angle in
      List.iter
        (fun q ->
          State.apply state (Gate.Rz theta) [| q |];
          bump_apply session "rz")
        qubits
  | Do_measure, _ ->
      List.iter
        (fun q ->
          if fault_fires session Fault.Channel_loss then
            Qerror.fail ~transient:true ~site:"Controller.simulate_op"
              (Qerror.Channel_loss { qubit = q });
          let m = State.measure state rng q in
          session.measures <- session.measures + 1;
          session.classical.(q) <-
            (if ideal then m else Noise.flip_readout noise rng m))
        qubits
  | Do_prep, _ ->
      List.iter
        (fun q ->
          let m = State.measure state rng q in
          if m = 1 then State.apply state Gate.X [| q |];
          if (not ideal) && Rng.bernoulli rng noise.Noise.prep_error then
            State.apply state Gate.X [| q |])
        qubits
  | No_op, _ -> ()

let issue_op session (op : Eqasm.quantum_op) =
  let enabled =
    match op.Eqasm.condition with
    | None -> true
    | Some bit -> session.classical.(bit) = 1
  in
  let qubits =
    if op.Eqasm.two_qubit then
      List.concat_map (fun (a, b) -> [ a; b ]) session.pair_masks.(op.Eqasm.mask)
    else session.single_masks.(op.Eqasm.mask)
  in
  let time_ns = session.time_cycles * session.cycle_ns in
  (* Micro-code translation, then timing queues, then the ADI. *)
  if fault_fires session Fault.Microcode_lookup then
    Qerror.fail ~transient:true ~site:"Controller.issue_op"
      (Qerror.Unknown_mnemonic op.Eqasm.mnemonic);
  let mops =
    Microcode.translate session.technology.microcode ~time_ns ~mnemonic:op.Eqasm.mnemonic
      ~angle:op.Eqasm.angle ~qubits
  in
  List.iter
    (fun (mop : Microcode.micro_op) ->
      Timing_queue.push_pool session.pool mop;
      if fault_fires session Fault.Queue_overflow then
        Qerror.fail ~transient:true ~site:"Controller.issue_op"
          (Qerror.Queue_overflow
             {
               channel = mop.Microcode.qubit;
               depth =
                 Timing_queue.pending (Timing_queue.queue session.pool mop.Microcode.qubit);
             });
      session.micro_ops <- session.micro_ops + 1;
      if Trace.enabled () then Trace.add_counter "microarch.micro_op" 1;
      if mop.Microcode.codeword.Microcode.software_phase <> 0.0 then begin
        session.phase_updates <- session.phase_updates + 1;
        if Trace.enabled () then Trace.add_counter "microarch.phase_update" 1
      end
      else begin
        if Trace.enabled () then Trace.add_counter "microarch.pulse" 1;
        let duration = pulse_duration session mop.Microcode.codeword.Microcode.pulse_name in
        session.end_ns <- max session.end_ns (time_ns + duration);
        session.trace <-
          {
            time_ns;
            qubit = mop.Microcode.qubit;
            opcode = mop.Microcode.codeword.Microcode.opcode;
            pulse_name = mop.Microcode.codeword.Microcode.pulse_name;
            duration_ns = duration;
          }
          :: session.trace
      end)
    mops;
  (* Drive the quantum chip. Two-qubit ops act on pairs from the t-mask.
     Conditional ops check the measurement-result register file first. *)
  if enabled then
    if op.Eqasm.two_qubit then
      List.iter
        (fun (a, b) -> simulate_op session op.Eqasm.mnemonic op.Eqasm.angle [ a; b ])
        session.pair_masks.(op.Eqasm.mask)
    else simulate_op session op.Eqasm.mnemonic op.Eqasm.angle session.single_masks.(op.Eqasm.mask)

let advance session cycles =
  session.time_cycles <- session.time_cycles + cycles;
  (* The queues fire everything due on the new timing grid position. *)
  ignore
    (Timing_queue.drain_pool_until session.pool (session.time_cycles * session.cycle_ns))

let step session instr =
  match instr with
  | Eqasm.Smis (r, qs) -> session.single_masks.(r) <- qs
  | Eqasm.Smit (r, ps) -> session.pair_masks.(r) <- ps
  | Eqasm.Qwait cycles -> advance session cycles
  | Eqasm.Bundle (pre_interval, ops) ->
      advance session pre_interval;
      session.bundles <- session.bundles + 1;
      if Trace.enabled () then Trace.add_counter "microarch.bundle" 1;
      List.iter (issue_op session) ops

let finish session =
  let total_pushed, peak, violations = Timing_queue.pool_stats session.pool in
  ignore total_pushed;
  {
    outcome = { Qca_qx.Sim.state = session.state; classical = session.classical };
    trace = List.rev session.trace;
    stats =
      {
        total_ns = max session.end_ns (session.time_cycles * session.cycle_ns);
        bundles_issued = session.bundles;
        micro_ops = session.micro_ops;
        peak_queue_depth = peak;
        timing_violations = violations;
        software_phase_updates = session.phase_updates;
      };
  }

let run_session ?noise ?rng ?faults technology (program : Eqasm.program) =
  Trace.with_span "microarch.session" (fun sp ->
      let session =
        start ?noise ?rng ?faults technology ~qubit_count:program.Eqasm.qubit_count
          ~cycle_ns:program.Eqasm.cycle_ns
      in
      if fault_fires session Fault.Backend_transient then
        Qerror.fail ~transient:true ~site:"Controller.run_session"
          (Qerror.Backend_transient "injected controller fault");
      List.iter (step session) program.Eqasm.instructions;
      Trace.set_sim_ns sp (max session.end_ns (session.time_cycles * session.cycle_ns));
      Trace.annotate sp (fun () ->
          let _, peak, violations = Timing_queue.pool_stats session.pool in
          [
            ("bundles", Trace.Int session.bundles);
            ("micro_ops", Trace.Int session.micro_ops);
            ("phase_updates", Trace.Int session.phase_updates);
            ("peak_queue", Trace.Int peak);
            ("timing_violations", Trace.Int violations);
          ]);
      session)

let collect session (program : Eqasm.program) =
  let result = finish session in
  {
    result with
    stats =
      {
        result.stats with
        total_ns =
          max result.stats.total_ns
            (program.Eqasm.makespan_cycles * program.Eqasm.cycle_ns);
      };
  }

let run ?noise ?rng ?faults technology program =
  collect (run_session ?noise ?rng ?faults technology program) program

let run_checked ?noise ?rng ?faults technology program =
  Qerror.protect ~site:"Controller.run" (fun () -> run ?noise ?rng ?faults technology program)

type shots_result = {
  histogram : (string * int) list;
  last : result;
  report : Engine.run_report;
}

let run_shots ?noise ?seed ?rng ?(shots = 1024) ?faults
    ?(policy = Resilience.default_policy) technology (program : Eqasm.program) =
  if shots < 1 then invalid_arg "Controller.run_shots: shots must be positive";
  Trace.with_span "microarch.run_shots" (fun shots_sp ->
  Trace.annotate shots_sp (fun () ->
      [
        ("technology", Trace.String technology.tech_name);
        ("shots", Trace.Int shots);
        ("qubits", Trace.Int program.Eqasm.qubit_count);
      ]);
  let rng =
    match rng, seed with
    | Some r, _ -> r
    | None, Some s -> Rng.create s
    | None, None -> shared_rng
  in
  let t0 = Sys.time () in
  let counts = Hashtbl.create 64 in
  let applies = Hashtbl.create 16 in
  let measures = ref 0 in
  let last = ref None in
  let counters = Resilience.fresh_counters () in
  let last_fault = ref None in
  for _ = 1 to shots do
    (* A shot aborted by an injected transient fault is re-attempted per the
       retry policy; a shot that exhausts its retries is counted as faulted
       and excluded from the histogram. Permanent errors propagate. *)
    let attempt () = run_session ?noise ~rng ?faults technology program in
    match
      match faults with
      | None -> Ok (attempt ())
      | Some _ -> Resilience.with_retries policy counters attempt
    with
    | Error e ->
        last_fault := Some e;
        counters.Resilience.faulted_shots <- counters.Resilience.faulted_shots + 1
    | Ok session ->
        Hashtbl.iter
          (fun name c ->
            Hashtbl.replace applies name
              (c + Option.value ~default:0 (Hashtbl.find_opt applies name)))
          session.applies;
        measures := !measures + session.measures;
        let result = collect session program in
        last := Some result;
        let key = Engine.bitstring result.outcome.Qca_qx.Sim.classical in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  let t1 = Sys.time () in
  let histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let gate_applies =
    Hashtbl.fold (fun name count acc -> (name, count) :: acc) applies []
    |> List.sort (fun (na, a) (nb, b) ->
           match compare b a with 0 -> compare na nb | c -> c)
  in
  let resilience =
    match faults with
    | None -> Engine.no_resilience
    | Some f ->
        {
          Engine.faults_injected = Fault.counts f;
          retries = counters.Resilience.retries;
          faulted_shots = counters.Resilience.faulted_shots;
          backoff_ns = counters.Resilience.backoff_total_ns;
          degraded = None;
        }
  in
  let report =
    {
      Engine.plan = Engine.Trajectory;
      plan_reason = "cycle-accurate micro-architecture (per-shot execution)";
      shots;
      seed;
      qubit_count = program.Eqasm.qubit_count;
      instruction_count = List.length program.Eqasm.instructions;
      gate_applies;
      measurements = !measures;
      wall = { Engine.analyse_s = 0.0; simulate_s = t1 -. t0; sample_s = 0.0 };
      resilience;
      fusion = Engine.no_fusion;
      cache = Engine.no_cache;
    }
  in
  (match faults with
  | None -> ()
  | Some _ ->
      Trace.annotate shots_sp (fun () ->
          [
            ("faulted_shots", Trace.Int counters.Resilience.faulted_shots);
            ("retries", Trace.Int counters.Resilience.retries);
          ]));
  match !last with
  | Some last -> { histogram; last; report }
  | None ->
      (* Every shot faulted: nothing to report, so surface the final fault
         as a permanent error (the caller's degradation ladder takes over). *)
      let e =
        match !last_fault with
        | Some e -> e
        | None -> Qerror.make ~site:"Controller.run_shots" (Qerror.Backend_transient "no shots")
      in
      raise (Qerror.Error { e with Qerror.transient = false }))

let backend ?(platform = Qca_compiler.Platform.superconducting_17)
    ?(technology = superconducting) ?faults ?policy () =
  (module struct
    let name = "microarch-" ^ technology.tech_name

    let run ?shots ?seed circuit =
      let compiled =
        Qca_compiler.Compiler.compile platform Qca_compiler.Compiler.Real circuit
      in
      match compiled.Qca_compiler.Compiler.eqasm with
      | None ->
          Qerror.fail ~site:"Controller.backend"
            (Qerror.Invalid "compiler produced no eQASM")
      | Some program ->
          let r =
            run_shots ~noise:platform.Qca_compiler.Platform.noise ?seed ?shots ?faults
              ?policy technology program
          in
          { Engine.histogram = r.histogram; report = r.report }
  end : Qca_qx.Backend.S)

module Backend = (val backend ())

let trace_to_string (result : result) =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer "  time_ns  q   opcode  pulse      dur_ns\n";
  List.iter
    (fun e ->
      Buffer.add_string buffer
        (Printf.sprintf "%9d  %-3d 0x%02x    %-10s %6d\n" e.time_ns e.qubit e.opcode
           e.pulse_name e.duration_ns))
    result.trace;
  Buffer.contents buffer
