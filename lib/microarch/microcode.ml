type codeword = { opcode : int; pulse_name : string; software_phase : float }

module String_map = Map.Make (String)

type table = codeword String_map.t

let make entries =
  List.fold_left (fun acc (m, cw) -> String_map.add m cw acc) String_map.empty entries

let lookup table mnemonic = String_map.find_opt mnemonic table
let mnemonics table = List.map fst (String_map.bindings table)

let superconducting_table =
  make
    [
      ("i", { opcode = 0x00; pulse_name = "idle"; software_phase = 0.0 });
      ("x90", { opcode = 0x01; pulse_name = "x90"; software_phase = 0.0 });
      ("mx90", { opcode = 0x02; pulse_name = "mx90"; software_phase = 0.0 });
      ("y90", { opcode = 0x03; pulse_name = "y90"; software_phase = 0.0 });
      ("my90", { opcode = 0x04; pulse_name = "my90"; software_phase = 0.0 });
      (* rz is a software frame update on transmons: no pulse at all. *)
      ("rz", { opcode = 0x05; pulse_name = "idle"; software_phase = 1.0 });
      ("cz", { opcode = 0x10; pulse_name = "cz"; software_phase = 0.0 });
      ("measz", { opcode = 0x20; pulse_name = "measz"; software_phase = 0.0 });
      ("prepz", { opcode = 0x21; pulse_name = "prepz"; software_phase = 0.0 });
    ]

let semiconducting_table =
  make
    [
      ("i", { opcode = 0x40; pulse_name = "idle"; software_phase = 0.0 });
      ("x90", { opcode = 0x41; pulse_name = "x90"; software_phase = 0.0 });
      ("mx90", { opcode = 0x42; pulse_name = "mx90"; software_phase = 0.0 });
      ("y90", { opcode = 0x43; pulse_name = "y90"; software_phase = 0.0 });
      ("my90", { opcode = 0x44; pulse_name = "my90"; software_phase = 0.0 });
      ("rz", { opcode = 0x45; pulse_name = "idle"; software_phase = 1.0 });
      ("cz", { opcode = 0x50; pulse_name = "cz"; software_phase = 0.0 });
      ("measz", { opcode = 0x60; pulse_name = "measz"; software_phase = 0.0 });
      ("prepz", { opcode = 0x61; pulse_name = "prepz"; software_phase = 0.0 });
    ]

type micro_op = { time_ns : int; qubit : int; codeword : codeword; angle : float option }

let translate table ~time_ns ~mnemonic ~angle ~qubits =
  match lookup table mnemonic with
  | None ->
      Qca_util.Error.fail ~site:"Microcode.translate"
        ~context:[ ("time_ns", string_of_int time_ns) ]
        (Qca_util.Error.Unknown_mnemonic mnemonic)
  | Some codeword ->
      List.map (fun qubit -> { time_ns; qubit; codeword; angle }) qubits
