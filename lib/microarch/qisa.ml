module Eqasm = Qca_compiler.Eqasm

type condition = Always | Eq | Ne | Lt | Ge

type instruction =
  | Label of string
  | Ldi of int * int
  | Mov of int * int
  | Add of int * int * int
  | Sub of int * int * int
  | Cmp of int * int
  | Br of condition * string
  | Fmr of int * int
  | Quantum of Eqasm.instruction
  | Halt

let register_count = 32

type program = {
  qisa_name : string;
  qubit_count : int;
  cycle_ns : int;
  code : instruction array;
  labels : (string, int) Hashtbl.t;
}

let check_register r =
  if r < 0 || r >= register_count then
    invalid_arg (Printf.sprintf "Qisa: register r%d out of range" r)

let validate qubit_count labels instr =
  match instr with
  | Label _ | Halt -> ()
  | Ldi (rd, _) -> check_register rd
  | Mov (rd, rs) | Cmp (rd, rs) ->
      check_register rd;
      check_register rs
  | Add (rd, rs, rt) | Sub (rd, rs, rt) ->
      check_register rd;
      check_register rs;
      check_register rt
  | Br (_, target) ->
      if not (Hashtbl.mem labels target) then
        invalid_arg (Printf.sprintf "Qisa: unknown label '%s'" target)
  | Fmr (rd, q) ->
      check_register rd;
      if q < 0 || q >= qubit_count then
        invalid_arg (Printf.sprintf "Qisa: FMR qubit %d out of range" q)
  | Quantum _ -> ()

let assemble ~name ~qubit_count ~cycle_ns instructions =
  if qubit_count <= 0 then invalid_arg "Qisa.assemble: qubit_count must be positive";
  let code = Array.of_list instructions in
  let labels = Hashtbl.create 8 in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Label l ->
          if Hashtbl.mem labels l then
            invalid_arg (Printf.sprintf "Qisa: duplicate label '%s'" l);
          Hashtbl.replace labels l pc
      | Ldi _ | Mov _ | Add _ | Sub _ | Cmp _ | Br _ | Fmr _ | Quantum _ | Halt -> ())
    code;
  Array.iter (validate qubit_count labels) code;
  { qisa_name = name; qubit_count; cycle_ns; code; labels }

let name p = p.qisa_name

let condition_to_string = function
  | Always -> "always"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"

let instruction_to_string = function
  | Label l -> l ^ ":"
  | Ldi (rd, imm) -> Printf.sprintf "  LDI r%d, %d" rd imm
  | Mov (rd, rs) -> Printf.sprintf "  MOV r%d, r%d" rd rs
  | Add (rd, rs, rt) -> Printf.sprintf "  ADD r%d, r%d, r%d" rd rs rt
  | Sub (rd, rs, rt) -> Printf.sprintf "  SUB r%d, r%d, r%d" rd rs rt
  | Cmp (rs, rt) -> Printf.sprintf "  CMP r%d, r%d" rs rt
  | Br (c, l) -> Printf.sprintf "  BR.%s %s" (condition_to_string c) l
  | Fmr (rd, q) -> Printf.sprintf "  FMR r%d, q%d" rd q
  | Quantum eq -> begin
      let rendered =
        Eqasm.to_string
          {
            Eqasm.platform_name = "";
            qubit_count = 0;
            cycle_ns = 0;
            instructions = [ eq ];
            makespan_cycles = 0;
          }
      in
      (* drop the header line, keep the instruction *)
      match String.split_on_char '\n' rendered with
      | _header :: line :: _ -> "  " ^ line
      | _ -> "  <quantum>"
    end
  | Halt -> "  HALT"

let to_string p =
  Printf.sprintf "# QISA program %s (%d qubits)\n%s\n" p.qisa_name p.qubit_count
    (String.concat "\n" (Array.to_list (Array.map instruction_to_string p.code)))

exception Parse_error of int * string

(* --- assembler ------------------------------------------------------- *)

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let parse_register lineno token =
  let token = String.trim token in
  let len = String.length token in
  if len >= 2 && (token.[0] = 'r' || token.[0] = 'R') then
    match int_of_string_opt (String.sub token 1 (len - 1)) with
    | Some r -> r
    | None -> raise (Parse_error (lineno, "bad register " ^ token))
  else raise (Parse_error (lineno, "expected register, got " ^ token))

let parse_qubit_operand lineno token =
  let token = String.trim token in
  let len = String.length token in
  if len >= 2 && (token.[0] = 'q' || token.[0] = 'Q') then
    match int_of_string_opt (String.sub token 1 (len - 1)) with
    | Some q -> q
    | None -> raise (Parse_error (lineno, "bad qubit " ^ token))
  else raise (Parse_error (lineno, "expected qubit, got " ^ token))

let parse_int_token lineno token =
  match int_of_string_opt (String.trim token) with
  | Some k -> k
  | None -> raise (Parse_error (lineno, "expected integer, got " ^ token))

let split_commas s = String.split_on_char ',' s |> List.map String.trim

(* "{0, 1, 2}" -> [0; 1; 2] *)
let parse_brace_list lineno s =
  let s = String.trim s in
  let len = String.length s in
  if len < 2 || s.[0] <> '{' || s.[len - 1] <> '}' then
    raise (Parse_error (lineno, "expected {...}, got " ^ s));
  let inner = String.trim (String.sub s 1 (len - 2)) in
  if inner = "" then [] else split_commas inner

(* "(0,1)" pairs appear comma-separated inside braces: re-split on ')' *)
let parse_pair_list lineno s =
  let s = String.trim s in
  let len = String.length s in
  if len < 2 || s.[0] <> '{' || s.[len - 1] <> '}' then
    raise (Parse_error (lineno, "expected {...}, got " ^ s));
  let inner = String.sub s 1 (len - 2) in
  let chunks = String.split_on_char ')' inner in
  List.filter_map
    (fun chunk ->
      let chunk = String.trim chunk in
      let chunk =
        if String.length chunk > 0 && (chunk.[0] = ',' || chunk.[0] = ' ') then
          String.trim (String.sub chunk 1 (String.length chunk - 1))
        else chunk
      in
      if chunk = "" then None
      else if chunk.[0] = '(' then begin
        match split_commas (String.sub chunk 1 (String.length chunk - 1)) with
        | [ a; b ] -> Some (parse_int_token lineno a, parse_int_token lineno b)
        | _ -> raise (Parse_error (lineno, "bad pair " ^ chunk))
      end
      else raise (Parse_error (lineno, "bad pair " ^ chunk)))
    chunks

let parse_quantum_op lineno text =
  let text = String.trim text in
  (* optional [if rN] prefix *)
  let condition, rest =
    if String.length text > 4 && String.sub text 0 3 = "[if" then begin
      match String.index_opt text ']' with
      | Some close ->
          let reg = String.trim (String.sub text 3 (close - 3)) in
          (Some (parse_register lineno reg), String.trim (String.sub text (close + 1) (String.length text - close - 1)))
      | None -> raise (Parse_error (lineno, "unterminated [if ...]"))
    end
    else (None, text)
  in
  match String.index_opt rest ' ' with
  | None -> raise (Parse_error (lineno, "quantum op needs a mask target: " ^ rest))
  | Some i ->
      let mnemonic = String.lowercase_ascii (String.sub rest 0 i) in
      let operand_text = String.trim (String.sub rest i (String.length rest - i)) in
      let parts = split_commas operand_text in
      let target, angle =
        match parts with
        | [ t ] -> (t, None)
        | [ t; a ] -> (t, Some (float_of_string a))
        | _ -> raise (Parse_error (lineno, "bad quantum operands: " ^ operand_text))
      in
      let two_qubit =
        match target.[0] with
        | 't' | 'T' -> true
        | 's' | 'S' -> false
        | _ -> raise (Parse_error (lineno, "mask target must be sN or tN: " ^ target))
      in
      let mask = parse_int_token lineno (String.sub target 1 (String.length target - 1)) in
      { Eqasm.mnemonic; angle; mask; two_qubit; condition }

let condition_of_string lineno = function
  | "always" -> Always
  | "eq" -> Eq
  | "ne" -> Ne
  | "lt" -> Lt
  | "ge" -> Ge
  | c -> raise (Parse_error (lineno, "unknown branch condition " ^ c))

let parse_line lineno line =
  let line = String.trim (strip_comment line) in
  if line = "" then None
  else begin
    (* bundle: "<pre>: op | op | ..." where the head before ':' is a number *)
    let bundle =
      match String.index_opt line ':' with
      | Some i when i > 0 -> begin
          match int_of_string_opt (String.trim (String.sub line 0 i)) with
          | Some pre when i < String.length line - 1 ->
              let ops_text = String.sub line (i + 1) (String.length line - i - 1) in
              let ops =
                String.split_on_char '|' ops_text |> List.map (parse_quantum_op lineno)
              in
              Some (Quantum (Eqasm.Bundle (pre, ops)))
          | Some _ | None -> None
        end
      | Some _ | None -> None
    in
    match bundle with
    | Some instr -> Some instr
    | None ->
        (* label? *)
        if String.length line > 1 && line.[String.length line - 1] = ':' then
          Some (Label (String.trim (String.sub line 0 (String.length line - 1))))
        else begin
          let head, rest =
            match String.index_opt line ' ' with
            | Some i ->
                ( String.sub line 0 i,
                  String.trim (String.sub line i (String.length line - i)) )
            | None -> (line, "")
          in
          let upper = String.uppercase_ascii head in
          match upper with
          | "HALT" -> Some Halt
          | "LDI" -> begin
              match split_commas rest with
              | [ rd; imm ] ->
                  Some (Ldi (parse_register lineno rd, parse_int_token lineno imm))
              | _ -> raise (Parse_error (lineno, "LDI rd, imm"))
            end
          | "MOV" -> begin
              match split_commas rest with
              | [ rd; rs ] -> Some (Mov (parse_register lineno rd, parse_register lineno rs))
              | _ -> raise (Parse_error (lineno, "MOV rd, rs"))
            end
          | "ADD" | "SUB" -> begin
              match split_commas rest with
              | [ rd; rs; rt ] ->
                  let rd = parse_register lineno rd
                  and rs = parse_register lineno rs
                  and rt = parse_register lineno rt in
                  Some (if upper = "ADD" then Add (rd, rs, rt) else Sub (rd, rs, rt))
              | _ -> raise (Parse_error (lineno, upper ^ " rd, rs, rt"))
            end
          | "CMP" -> begin
              match split_commas rest with
              | [ rs; rt ] -> Some (Cmp (parse_register lineno rs, parse_register lineno rt))
              | _ -> raise (Parse_error (lineno, "CMP rs, rt"))
            end
          | "FMR" -> begin
              match split_commas rest with
              | [ rd; q ] ->
                  Some (Fmr (parse_register lineno rd, parse_qubit_operand lineno q))
              | _ -> raise (Parse_error (lineno, "FMR rd, qN"))
            end
          | "QWAIT" -> Some (Quantum (Eqasm.Qwait (parse_int_token lineno rest)))
          | "SMIS" -> begin
              match String.index_opt rest ',' with
              | Some i ->
                  let reg = String.trim (String.sub rest 0 i) in
                  let qubits =
                    parse_brace_list lineno
                      (String.sub rest (i + 1) (String.length rest - i - 1))
                    |> List.map (parse_int_token lineno)
                  in
                  let r = parse_int_token lineno (String.sub reg 1 (String.length reg - 1)) in
                  Some (Quantum (Eqasm.Smis (r, qubits)))
              | None -> raise (Parse_error (lineno, "SMIS sN, {..}"))
            end
          | "SMIT" -> begin
              match String.index_opt rest ',' with
              | Some i ->
                  let reg = String.trim (String.sub rest 0 i) in
                  let pairs =
                    parse_pair_list lineno
                      (String.sub rest (i + 1) (String.length rest - i - 1))
                  in
                  let r = parse_int_token lineno (String.sub reg 1 (String.length reg - 1)) in
                  Some (Quantum (Eqasm.Smit (r, pairs)))
              | None -> raise (Parse_error (lineno, "SMIT tN, {..}"))
            end
          | other when String.length other > 3 && String.sub other 0 3 = "BR." ->
              let cond =
                condition_of_string lineno
                  (String.lowercase_ascii (String.sub other 3 (String.length other - 3)))
              in
              Some (Br (cond, rest))
          | _ -> raise (Parse_error (lineno, "unknown mnemonic " ^ head))
        end
  end

let parse ~name ~qubit_count ~cycle_ns source =
  let lines = String.split_on_char '\n' source in
  let instrs =
    List.concat (List.mapi (fun idx line -> Option.to_list (parse_line (idx + 1) line)) lines)
  in
  assemble ~name ~qubit_count ~cycle_ns instrs

type run_result = {
  controller : Controller.result;
  registers : int array;
  executed : int;
}

let execute ?noise ?rng ?(max_steps = 100_000) technology p =
  let session =
    Controller.start ?noise ?rng technology ~qubit_count:p.qubit_count
      ~cycle_ns:p.cycle_ns
  in
  let registers = Array.make register_count 0 in
  let flag = ref 0 in
  let executed = ref 0 in
  let pc = ref 0 in
  let running = ref true in
  while !running && !pc < Array.length p.code do
    if !executed > max_steps then
      Qca_util.Error.fail ~site:"Qisa.execute"
        ~context:
          [ ("program", p.qisa_name); ("max_steps", string_of_int max_steps) ]
        (Qca_util.Error.Non_convergence "step budget exceeded");
    incr executed;
    (match p.code.(!pc) with
    | Label _ -> ()
    | Ldi (rd, imm) -> registers.(rd) <- imm
    | Mov (rd, rs) -> registers.(rd) <- registers.(rs)
    | Add (rd, rs, rt) -> registers.(rd) <- registers.(rs) + registers.(rt)
    | Sub (rd, rs, rt) -> registers.(rd) <- registers.(rs) - registers.(rt)
    | Cmp (rs, rt) -> flag := compare registers.(rs) registers.(rt)
    | Br (cond, target) ->
        let taken =
          match cond with
          | Always -> true
          | Eq -> !flag = 0
          | Ne -> !flag <> 0
          | Lt -> !flag < 0
          | Ge -> !flag >= 0
        in
        if taken then pc := Hashtbl.find p.labels target - 1
    | Fmr (rd, q) -> registers.(rd) <- Controller.classical_bit session q
    | Quantum eq -> Controller.step session eq
    | Halt -> running := false);
    pc := !pc + 1
  done;
  { controller = Controller.finish session; registers; executed = !executed }
