(** Quantum Instruction Set Architecture interpreter (Figure 5).

    Section 2.5: the quantum accelerator has "a series of instructions ...
    some of which are classical logic and others are the quantum
    instructions". This module is that combined ISA: a register machine
    (LDI/ADD/SUB/CMP/BR) with FMR (fetch measurement result) and the eQASM
    quantum instructions embedded, executed by the cycle-accurate
    {!Controller} session. It expresses run-time control the compiler cannot
    resolve statically — repeat-until-success, active reset, hybrid loops. *)

type condition = Always | Eq | Ne | Lt | Ge

type instruction =
  | Label of string
  | Ldi of int * int  (** rd <- immediate *)
  | Mov of int * int  (** rd <- rs *)
  | Add of int * int * int  (** rd <- rs + rt *)
  | Sub of int * int * int
  | Cmp of int * int  (** set the comparison flag from rs - rt *)
  | Br of condition * string  (** conditional branch on the flag *)
  | Fmr of int * int  (** rd <- measurement result of qubit q (0/1; -1 unmeasured) *)
  | Quantum of Qca_compiler.Eqasm.instruction
  | Halt

val register_count : int
(** 32 general-purpose registers. *)

type program

val assemble :
  name:string -> qubit_count:int -> cycle_ns:int -> instruction list -> program
(** Validates register indices, qubit ranges in FMR, and that every branch
    target exists; raises [Invalid_argument] otherwise. *)

val name : program -> string
val to_string : program -> string

exception Parse_error of int * string

val parse : name:string -> qubit_count:int -> cycle_ns:int -> string -> program
(** Assemble from the textual form produced by {!to_string}: labels
    ("loop:"), classical ops ("LDI r0, 5", "ADD r2, r0, r1", "CMP r0, r1",
    "BR.ne loop", "FMR r2, q0", "MOV r1, r0", "HALT") and the eQASM quantum
    forms ("SMIS s0, {0, 1}", "SMIT t0, {(0,1)}", "QWAIT n",
    "1: x90 s0 | cz t0", "[if r3] x90 s0" inside bundles). Case-insensitive
    mnemonics; "#" comments. *)

type run_result = {
  controller : Controller.result;  (** Quantum-side outcome, trace, stats. *)
  registers : int array;  (** Final register file. *)
  executed : int;  (** Classical instructions retired. *)
}

val execute :
  ?noise:Qca_qx.Noise.model ->
  ?rng:Qca_util.Rng.t ->
  ?max_steps:int ->
  Controller.technology ->
  program ->
  run_result
(** Run to [Halt] (or the end of code). [max_steps] (default 100000) bounds
    run-away loops; raises {!Qca_util.Error.Error} with [Non_convergence]
    when exceeded. *)
