(** Micro-code unit (Figure 6): translates quantum operations at run time
    into horizontal micro-operations (codewords) on control channels.

    The paper's retargeting result hinges on this table: moving the same
    micro-architecture between superconducting and semiconducting chips only
    changed the compiler configuration and this micro-code table. *)

type codeword = {
  opcode : int;  (** Hardware opcode driven onto the codeword bus. *)
  pulse_name : string;  (** ADI pulse the codeword triggers. *)
  software_phase : float;
      (** Extra IQ frame rotation (used to implement rz in software, the
          standard trick on transmons). *)
}

type table
(** Micro-code store: mnemonic -> codeword. *)

val make : (string * codeword) list -> table
val lookup : table -> string -> codeword option
val mnemonics : table -> string list

val superconducting_table : table
(** Codewords for the transmon technology. *)

val semiconducting_table : table
(** Codewords for the spin-qubit technology (same mnemonics, different
    opcodes and pulses — the retargeting demonstration). *)

type micro_op = {
  time_ns : int;  (** Absolute trigger time. *)
  qubit : int;  (** Control channel (one per qubit per channel kind). *)
  codeword : codeword;
  angle : float option;  (** Resolved rz angle, when applicable. *)
}

val translate :
  table ->
  time_ns:int ->
  mnemonic:string ->
  angle:float option ->
  qubits:int list ->
  micro_op list
(** Expand one eQASM quantum op into per-qubit micro-operations. Raises
    {!Qca_util.Error.Error} with [Unknown_mnemonic] for mnemonics missing
    from the table. *)
