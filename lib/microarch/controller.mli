(** Cycle-accurate micro-architecture controller (Figure 6).

    Executes an eQASM program: maintains the timing grid, resolves mask
    registers, runs every quantum operation through the micro-code unit into
    per-channel timing queues, and drives the QX simulator as the "quantum
    chip" at the end of the pipeline (the pink block of Figure 7). *)

type technology = {
  tech_name : string;
  microcode : Microcode.table;
  pulses : Adi.library;
}

val superconducting : technology
val semiconducting : technology

type trace_event = {
  time_ns : int;
  qubit : int;
  opcode : int;
  pulse_name : string;
  duration_ns : int;
}

type run_stats = {
  total_ns : int;  (** Wall-clock length of the pulse schedule. *)
  bundles_issued : int;
  micro_ops : int;
  peak_queue_depth : int;
  timing_violations : int;
  software_phase_updates : int;  (** rz frame updates (no pulse emitted). *)
}

type result = {
  outcome : Qca_qx.Sim.outcome;  (** QX execution result. *)
  trace : trace_event list;  (** Pulse-level timeline, time-ordered. *)
  stats : run_stats;
}

val run :
  ?noise:Qca_qx.Noise.model ->
  ?rng:Qca_util.Rng.t ->
  ?faults:Qca_util.Fault.t ->
  technology ->
  Qca_compiler.Eqasm.program ->
  result
(** Execute one shot. Raises {!Qca_util.Error.Error} ([Unknown_mnemonic] /
    [Missing_pulse]) on mnemonics missing from the micro-code table or
    pulses missing from the ADI library, and transient structured errors
    when an attached [faults] injector fires (see {!Qca_util.Fault} for the
    controller fault sites; retry wrapping is the caller's job — or use
    {!run_shots}). [noise] defaults to ideal qubits so that functional
    behaviour can be checked separately from error modelling. Without
    [?rng], randomness comes from a process-wide stream that advances
    across calls (see {!Qca_qx.Engine.default_rng} for the semantics). *)

val run_checked :
  ?noise:Qca_qx.Noise.model ->
  ?rng:Qca_util.Rng.t ->
  ?faults:Qca_util.Fault.t ->
  technology ->
  Qca_compiler.Eqasm.program ->
  (result, Qca_util.Error.t) Stdlib.result
(** [run] with structured errors instead of exceptions. *)

type shots_result = {
  histogram : (string * int) list;
      (** Measured bitstrings over all shots (count-descending; qubit 0
          rightmost, '-' for never-measured qubits). *)
  last : result;  (** Trace and stats of the final shot. *)
  report : Qca_qx.Engine.run_report;
      (** Engine-format metrics: always the trajectory plan, with gate
          applies and measurements summed over all shots. *)
}

val run_shots :
  ?noise:Qca_qx.Noise.model ->
  ?seed:int ->
  ?rng:Qca_util.Rng.t ->
  ?shots:int ->
  ?faults:Qca_util.Fault.t ->
  ?policy:Qca_util.Resilience.policy ->
  technology ->
  Qca_compiler.Eqasm.program ->
  shots_result
(** Execute an eQASM program for many shots (default 1024) and histogram
    the measurement records. The micro-architecture is inherently
    per-shot — measurement collapse feeds the timing pipeline — so there is
    no sampled fast path here; the value of this entry point is the uniform
    histogram + {!Qca_qx.Engine.run_report} surface. [?rng] wins over
    [?seed]; with neither, the shared stream is used.

    With a [faults] injector attached, every shot aborted by a transient
    fault is retried per [policy] (default
    {!Qca_util.Resilience.default_policy}); shots that exhaust their
    retries are dropped from the histogram and counted in
    [report.resilience.faulted_shots] (so
    [faulted_shots + histogram total = shots]). If {e every} shot faults,
    raises a permanent {!Qca_util.Error.Error} so the caller's degradation
    ladder can take over. Without [faults] behaviour is bit-identical to
    the pre-resilience path. *)

val backend :
  ?platform:Qca_compiler.Platform.t ->
  ?technology:technology ->
  ?faults:Qca_util.Fault.t ->
  ?policy:Qca_util.Resilience.policy ->
  unit ->
  (module Qca_qx.Backend.S)
(** An execution target that compiles the circuit for [platform] (default
    the 17-qubit superconducting platform, Real mode), then pushes every
    shot through the micro-architecture under the platform noise model.
    Histogram keys are platform-width (the mapper may relocate logical
    qubits). [faults]/[policy] thread through to {!run_shots}; wrap the
    result with {!Qca_qx.Resilient.wrap} to add backend-level fallback. *)

module Backend : Qca_qx.Backend.S
(** [backend ()] with the defaults: "microarch-superconducting". *)

(** {2 Stepwise execution}

    The QISA interpreter (Figure 5) interleaves classical instructions with
    quantum ones, so it needs to feed the controller one instruction at a
    time and read measurement results back (FMR). *)

type session

val start :
  ?noise:Qca_qx.Noise.model ->
  ?rng:Qca_util.Rng.t ->
  ?faults:Qca_util.Fault.t ->
  technology ->
  qubit_count:int ->
  cycle_ns:int ->
  session

val step : session -> Qca_compiler.Eqasm.instruction -> unit
(** Execute one eQASM instruction in the session. *)

val classical_bit : session -> int -> int
(** Latest measurement result of a qubit (-1 when never measured): the FMR
    (fetch measurement result) path. *)

val elapsed_cycles : session -> int

val finish : session -> result
(** Close the session and collect trace + statistics. *)

val trace_to_string : result -> string
(** Tabular pulse timeline (one line per micro-op). *)
