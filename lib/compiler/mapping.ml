module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Graph = Qca_util.Graph

type strategy = Greedy | Lookahead of int | Sabre
type placement = Trivial | By_degree

let strategy_to_string = function
  | Greedy -> "greedy"
  | Lookahead k -> Printf.sprintf "lookahead:%d" k
  | Sabre -> "sabre"

let strategy_of_string s =
  match s with
  | "greedy" -> Ok Greedy
  | "sabre" -> Ok Sabre
  | "lookahead" -> Ok (Lookahead 4)
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "lookahead" -> (
          let k = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt k with
          | Some k when k > 0 -> Ok (Lookahead k)
          | _ ->
              Error
                (Printf.sprintf "lookahead window must be a positive integer: %s" k))
      | _ ->
          Error
            (Printf.sprintf
               "unknown routing strategy '%s' (expected sabre, greedy or \
                lookahead[:K])"
               s))

type result = {
  circuit : Circuit.t;
  initial_layout : int array;
  final_layout : int array;
  swaps_added : int;
}

(* Interaction count per logical qubit, for the placement heuristic. *)
let interaction_degrees circuit =
  let n = Circuit.qubit_count circuit in
  let deg = Array.make n 0 in
  List.iter
    (fun instr ->
      match instr with
      | (Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops)) when Gate.arity u >= 2 ->
          Array.iter (fun q -> deg.(q) <- deg.(q) + 1) ops
      | Gate.Unitary _ | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _
      | Gate.Barrier _ ->
          ())
    (Circuit.instructions circuit);
  deg

(* BFS order from the best-connected physical qubit. *)
let physical_order coupling =
  let n = Graph.size coupling in
  let start = ref 0 in
  for v = 1 to n - 1 do
    if Graph.degree coupling v > Graph.degree coupling !start then start := v
  done;
  let seen = Array.make n false in
  let order = ref [] in
  let queue = Queue.create () in
  Queue.add !start queue;
  seen.(!start) <- true;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    List.iter
      (fun (u, _) ->
        if not seen.(u) then begin
          seen.(u) <- true;
          Queue.add u queue
        end)
      (Graph.neighbours coupling v)
  done;
  (* Disconnected leftovers, if any. *)
  for v = 0 to n - 1 do
    if not seen.(v) then order := v :: !order
  done;
  List.rev !order

let initial_layout placement coupling circuit physical_count =
  let logical_count = Circuit.qubit_count circuit in
  match placement with
  | Trivial -> Array.init logical_count Fun.id
  | By_degree ->
      let deg = interaction_degrees circuit in
      let logical_by_degree =
        List.sort
          (fun a b -> compare (deg.(b), a) (deg.(a), b))
          (List.init logical_count Fun.id)
      in
      let phys = physical_order coupling in
      let layout = Array.make logical_count (-1) in
      List.iteri
        (fun i l -> if i < physical_count then layout.(l) <- List.nth phys i)
        logical_by_degree;
      layout

type state = {
  mutable layout : int array;  (** logical -> physical *)
  mutable occupant : int array;  (** physical -> logical, or -1 *)
}

let swap_physical st p1 p2 =
  let l1 = st.occupant.(p1) and l2 = st.occupant.(p2) in
  st.occupant.(p1) <- l2;
  st.occupant.(p2) <- l1;
  if l1 >= 0 then st.layout.(l1) <- p2;
  if l2 >= 0 then st.layout.(l2) <- p1

(* Remaining two-qubit interactions, used by the lookahead scorer. *)
let upcoming_pairs instrs =
  List.filter_map
    (fun instr ->
      match instr with
      | (Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops)) when Gate.arity u = 2 ->
          Some (ops.(0), ops.(1))
      | Gate.Unitary _ | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _
      | Gate.Barrier _ ->
          None)
    instrs

let hop coupling a b =
  match Graph.hop_distance coupling a b with
  | Some d -> d
  | None -> invalid_arg "Mapping: physical topology is disconnected"

let rec take k = function
  | [] -> []
  | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest

let lookahead_score coupling st pairs =
  List.fold_left
    (fun acc (l1, l2) -> acc + hop coupling st.layout.(l1) st.layout.(l2))
    0 pairs

(* Qubits an instruction depends on, including a conditional's classical
   source bit so measure→feedback ordering survives SABRE's reordering of
   independent instructions. *)
let instr_deps = function
  | Gate.Unitary (_, ops) -> ops
  | Gate.Conditional (bit, _, ops) -> Array.append [| bit |] ops
  | Gate.Prep q | Gate.Measure q -> [| q |]
  | Gate.Barrier qs -> qs

let dedup_sorted arr =
  let l = List.sort_uniq compare (Array.to_list arr) in
  Array.of_list l

(* SABRE-style router: maintain the front layer of dependency-ready
   instructions, execute everything executable, and when stuck pick the
   swap minimising the summed front-layer distance plus a discounted
   extended-set lookahead, damped by a per-qubit decay factor. *)
let run_sabre ~placement platform circuit =
  let physical_count = platform.Platform.qubit_count in
  if Circuit.qubit_count circuit > physical_count then
    invalid_arg "Mapping.run: circuit larger than platform";
  let coupling = Platform.connectivity platform in
  let layout0 = initial_layout placement coupling circuit physical_count in
  let st =
    {
      layout = Array.copy layout0;
      occupant =
        (let occ = Array.make physical_count (-1) in
         Array.iteri (fun l p -> occ.(p) <- l) layout0;
         occ);
    }
  in
  (* All-pairs BFS hop distances over the coupling graph. *)
  let dist =
    Array.init physical_count (fun s ->
        let d = Array.make physical_count max_int in
        d.(s) <- 0;
        let q = Queue.create () in
        Queue.add s q;
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          List.iter
            (fun (u, _) ->
              if d.(u) = max_int then begin
                d.(u) <- d.(v) + 1;
                Queue.add u q
              end)
            (Graph.neighbours coupling v)
        done;
        d)
  in
  let instrs = Array.of_list (Circuit.instructions circuit) in
  let n = Array.length instrs in
  let fpq = Array.map (fun i -> dedup_sorted (instr_deps i)) instrs in
  let logical_count = Circuit.qubit_count circuit in
  (* Per-qubit program order and cursors: instr [i] is dependency-ready
     iff it is at the head of every operand qubit's list. *)
  let per_qubit =
    let tmp = Array.make logical_count [] in
    for i = n - 1 downto 0 do
      Array.iter (fun q -> tmp.(q) <- i :: tmp.(q)) fpq.(i)
    done;
    Array.map Array.of_list tmp
  in
  let head = Array.make logical_count 0 in
  let is_ready i =
    Array.for_all
      (fun q -> head.(q) < Array.length per_qubit.(q) && per_qubit.(q).(head.(q)) = i)
      fpq.(i)
  in
  let front = ref [] in
  let in_front = Array.make n false in
  for i = n - 1 downto 0 do
    if is_ready i then begin
      front := i :: !front;
      in_front.(i) <- true
    end
  done;
  let executed = Array.make n false in
  let executed_count = ref 0 in
  let out =
    ref (Circuit.create ~name:(Circuit.name circuit ^ "_mapped") physical_count)
  in
  let measured_at = Array.make logical_count (-1) in
  let swaps = ref 0 in
  let emit instr = out := Circuit.add !out instr in
  let emit_swap p1 p2 =
    emit (Gate.Unitary (Gate.Swap, [| p1; p2 |]));
    swap_physical st p1 p2;
    incr swaps
  in
  let two_qubit_pair i =
    match instrs.(i) with
    | (Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops))
      when Gate.arity u = 2 ->
        Some (ops.(0), ops.(1))
    | _ -> None
  in
  let executable i =
    match two_qubit_pair i with
    | Some (l1, l2) ->
        Platform.are_coupled platform st.layout.(l1) st.layout.(l2)
    | None -> true
  in
  let exec i =
    (match instrs.(i) with
    | (Gate.Unitary (u, _) | Gate.Conditional (_, u, _)) when Gate.arity u > 2
      ->
        invalid_arg "Mapping.run: decompose >2-qubit gates before mapping"
    | Gate.Measure q ->
        measured_at.(q) <- st.layout.(q);
        emit (Gate.Measure st.layout.(q))
    | Gate.Conditional (bit, u, ops) ->
        let physical_bit =
          if measured_at.(bit) >= 0 then measured_at.(bit) else st.layout.(bit)
        in
        emit
          (Gate.Conditional (physical_bit, u, Array.map (fun l -> st.layout.(l)) ops))
    | instr -> emit (Gate.map_qubits (fun l -> st.layout.(l)) instr));
    executed.(i) <- true;
    in_front.(i) <- false;
    incr executed_count;
    Array.iter (fun q -> head.(q) <- head.(q) + 1) fpq.(i);
    (* Newly unblocked successors join the front layer. *)
    Array.iter
      (fun q ->
        if head.(q) < Array.length per_qubit.(q) then begin
          let j = per_qubit.(q).(head.(q)) in
          if (not in_front.(j)) && (not executed.(j)) && is_ready j then begin
            in_front.(j) <- true;
            front := j :: !front
          end
        end)
      fpq.(i)
  in
  let decay = Array.make physical_count 1.0 in
  let stall = ref 0 in
  let stall_limit = (4 * physical_count) + 16 in
  let ext_size = 20 in
  let extended_pairs () =
    let acc = ref [] and count = ref 0 and i = ref 0 in
    while !count < ext_size && !i < n do
      (if (not executed.(!i)) && not in_front.(!i) then
         match two_qubit_pair !i with
         | Some p ->
             acc := p :: !acc;
             incr count
         | None -> ());
      incr i
    done;
    List.rev !acc
  in
  let pair_dist (l1, l2) = dist.(st.layout.(l1)).(st.layout.(l2)) in
  let mean_dist pairs =
    match pairs with
    | [] -> 0.0
    | _ ->
        float_of_int (List.fold_left (fun acc p -> acc + pair_dist p) 0 pairs)
        /. float_of_int (List.length pairs)
  in
  while !executed_count < n do
    (* Drain everything executable. *)
    let progressed = ref false in
    let continue = ref true in
    while !continue do
      let sorted = List.sort compare !front in
      let execable = List.filter executable sorted in
      match execable with
      | [] -> continue := false
      | _ ->
          front := List.filter (fun i -> not (List.mem i execable)) !front;
          List.iter exec execable;
          progressed := true
    done;
    if !progressed then begin
      Array.fill decay 0 physical_count 1.0;
      stall := 0
    end;
    if !executed_count < n then begin
      let fpairs = List.filter_map two_qubit_pair (List.sort compare !front) in
      assert (fpairs <> []);
      if !stall >= stall_limit then begin
        (* Safety valve: route the first blocked pair directly. *)
        let l1, l2 = List.hd fpairs in
        let guard = ref 0 in
        while
          (not (Platform.are_coupled platform st.layout.(l1) st.layout.(l2)))
          && !guard <= physical_count
        do
          incr guard;
          match Graph.shortest_path coupling st.layout.(l1) st.layout.(l2) with
          | None | Some ([] | [ _ ]) ->
              invalid_arg "Mapping: no route between physical qubits"
          | Some (p1 :: next :: _) -> emit_swap p1 next
        done;
        stall := 0
      end
      else begin
        let epairs = extended_pairs () in
        (* Candidate swaps: edges incident to a front-layer qubit. *)
        let candidates =
          List.sort_uniq compare
            (List.concat_map
               (fun (l1, l2) ->
                 List.concat_map
                   (fun p ->
                     List.map
                       (fun (pn, _) -> (min p pn, max p pn))
                       (Graph.neighbours coupling p))
                   [ st.layout.(l1); st.layout.(l2) ])
               fpairs)
        in
        let score (p1, p2) =
          swap_physical st p1 p2;
          let s =
            (mean_dist fpairs +. (0.5 *. mean_dist epairs))
            *. Float.max decay.(p1) decay.(p2)
          in
          swap_physical st p1 p2;
          s
        in
        let best =
          List.fold_left
            (fun best edge ->
              let s = score edge in
              match best with
              | Some (bs, _) when bs <= s -> best
              | _ -> Some (s, edge))
            None candidates
        in
        match best with
        | None -> invalid_arg "Mapping: no route between physical qubits"
        | Some (_, (p1, p2)) ->
            emit_swap p1 p2;
            decay.(p1) <- decay.(p1) +. 0.01;
            decay.(p2) <- decay.(p2) +. 0.01;
            incr stall
      end
    end
  done;
  {
    circuit = !out;
    initial_layout = layout0;
    final_layout = Array.copy st.layout;
    swaps_added = !swaps;
  }

(* The original swap-walk mapper (greedy / k-lookahead), kept as the
   baseline for `--route greedy`. *)
let run_walk ~strategy ~placement platform circuit =
  let physical_count = platform.Platform.qubit_count in
  if Circuit.qubit_count circuit > physical_count then
    invalid_arg "Mapping.run: circuit larger than platform";
  let coupling = Platform.connectivity platform in
  let layout = initial_layout placement coupling circuit physical_count in
  let st =
    {
      layout = Array.copy layout;
      occupant =
        (let occ = Array.make physical_count (-1) in
         Array.iteri (fun l p -> occ.(p) <- l) layout;
         occ);
    }
  in
  let out = ref (Circuit.create ~name:(Circuit.name circuit ^ "_mapped") physical_count) in
  (* Classical bits are indexed by the physical qubit that was measured, so
     record where each logical qubit sat when it was last measured. *)
  let measured_at = Array.make (Circuit.qubit_count circuit) (-1) in
  let swaps = ref 0 in
  let emit instr = out := Circuit.add !out instr in
  let emit_swap p1 p2 =
    emit (Gate.Unitary (Gate.Swap, [| p1; p2 |]));
    swap_physical st p1 p2;
    incr swaps
  in
  (* Route logical pair (l1, l2) until their physical homes are coupled. *)
  let route future l1 l2 =
    let rec step () =
      let p1 = st.layout.(l1) and p2 = st.layout.(l2) in
      if not (Platform.are_coupled platform p1 p2) then begin
        match Graph.shortest_path coupling p1 p2 with
        | None | Some ([] | [ _ ]) ->
            invalid_arg "Mapping: no route between physical qubits"
        | Some (_ :: next_from_p1 :: _ as path) ->
            let move_from_p1 () = emit_swap p1 next_from_p1 in
            let move_from_p2 () =
              match List.rev path with
              | _ :: next_from_p2 :: _ -> emit_swap p2 next_from_p2
              | [] | [ _ ] -> assert false
            in
            begin
              match strategy with
              | Sabre -> assert false (* dispatched to run_sabre *)
              | Greedy -> move_from_p1 ()
              | Lookahead k ->
                  (* Try both endpoints; keep the swap that minimises the
                     summed distance of the next k interactions. *)
                  let pairs = take k (upcoming_pairs future) in
                  move_from_p1 ();
                  let score1 = lookahead_score coupling st pairs in
                  (* undo and try the other end *)
                  swap_physical st p1 next_from_p1;
                  (match List.rev path with
                  | _ :: next_from_p2 :: _ ->
                      swap_physical st p2 next_from_p2;
                      let score2 = lookahead_score coupling st pairs in
                      swap_physical st p2 next_from_p2;
                      (* Remove the provisional swap instruction we emitted. *)
                      let instrs = Circuit.instructions !out in
                      let without_last = List.filteri (fun i _ -> i < List.length instrs - 1) instrs in
                      out := Circuit.of_list ~name:(Circuit.name !out) physical_count without_last;
                      decr swaps;
                      if score1 <= score2 then emit_swap p1 next_from_p1
                      else move_from_p2 ()
                  | [] | [ _ ] -> assert false)
            end;
            step ()
      end
    in
    step ()
  in
  let rec process = function
    | [] -> ()
    | instr :: future ->
        begin
          match instr with
          | (Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops)) when Gate.arity u = 2 ->
              route future ops.(0) ops.(1);
              emit (Gate.map_qubits (fun l -> st.layout.(l)) instr)
          | (Gate.Unitary (u, _) | Gate.Conditional (_, u, _)) when Gate.arity u > 2 ->
              invalid_arg "Mapping.run: decompose >2-qubit gates before mapping"
          | Gate.Conditional (bit, u, ops) ->
              let physical_bit =
                if measured_at.(bit) >= 0 then measured_at.(bit) else st.layout.(bit)
              in
              emit
                (Gate.Conditional (physical_bit, u, Array.map (fun l -> st.layout.(l)) ops))
          | Gate.Measure q ->
              measured_at.(q) <- st.layout.(q);
              emit (Gate.Measure st.layout.(q))
          | Gate.Unitary _ | Gate.Prep _ | Gate.Barrier _ ->
              emit (Gate.map_qubits (fun l -> st.layout.(l)) instr)
        end;
        process future
  in
  process (Circuit.instructions circuit);
  { circuit = !out; initial_layout = layout; final_layout = Array.copy st.layout; swaps_added = !swaps }

let run ?(strategy = Greedy) ?(placement = Trivial) platform circuit =
  match strategy with
  | Sabre -> run_sabre ~placement platform circuit
  | Greedy | Lookahead _ -> run_walk ~strategy ~placement platform circuit

let overhead platform result ~original =
  let routed_2q = Circuit.two_qubit_gate_count result.circuit in
  let original_2q = max 1 (Circuit.two_qubit_gate_count original) in
  let gate_overhead = float_of_int routed_2q /. float_of_int original_2q in
  let widened =
    Circuit.of_list ~name:(Circuit.name original) platform.Platform.qubit_count
      (Circuit.instructions original)
  in
  let t_original = (Schedule.run platform widened).Schedule.makespan in
  let t_routed = (Schedule.run platform result.circuit).Schedule.makespan in
  let latency_overhead = float_of_int t_routed /. float_of_int (max 1 t_original) in
  (gate_overhead, latency_overhead)
