(** Qubit placement and routing (section 2.6 "placement and routing").

    Real and realistic qubits only couple to nearest neighbours, so two-qubit
    gates on distant logical qubits require routing the qubit state across
    the topology with SWAPs (the compiler-inserted MOVE operations of
    sections 2.6 and 3.2).

    {b Mapping-permutation invariant.} Every strategy returns a circuit over
    physical indices such that, at any point in the program, logical qubit
    [l]'s state lives on exactly one physical wire, starting at
    [initial_layout.(l)] and ending at [final_layout.(l)]; the routed circuit
    equals the original conjugated by those wire permutations (inserted SWAPs
    included). Measurement outcomes are preserved: classical bit indices
    follow the physical qubit a logical qubit occupied when it was measured,
    and classically-conditioned gates read that recorded bit. *)

type strategy =
  | Greedy  (** Walk one endpoint along the shortest path. *)
  | Lookahead of int
      (** Choose which endpoint to move by scoring the next [k] two-qubit
          gates' total distance. *)
  | Sabre
      (** SABRE-style lookahead router (Li, Ding & Xie): keep the front
          layer of dependency-ready gates, execute everything the coupling
          graph allows, and when stuck insert the swap minimising the mean
          front-layer hop distance plus a 0.5-weighted extended-set
          lookahead, damped by a per-qubit decay factor that spreads
          consecutive swaps across wires. Independent instructions may be
          reordered (dependency order per qubit, and measure→conditional
          order, are preserved). Deterministic: ties break on the smallest
          physical edge. *)

val strategy_to_string : strategy -> string
(** Stable vocabulary name: ["greedy"], ["lookahead:K"], ["sabre"] — used by
    the [qxc --route] flag and the spool header. *)

val strategy_of_string : string -> (strategy, string) result
(** Inverse of {!strategy_to_string}. Accepts bare ["lookahead"] (window 4).
    [Error] carries a human-readable message. *)

type placement =
  | Trivial  (** Logical qubit i starts on physical qubit i. *)
  | By_degree
      (** Most-interacting logical qubits on best-connected physical qubits. *)

type result = {
  circuit : Qca_circuit.Circuit.t;  (** Physical-operand circuit with SWAPs. *)
  initial_layout : int array;  (** [initial_layout.(logical) = physical]. *)
  final_layout : int array;
  swaps_added : int;
}

val run :
  ?strategy:strategy ->
  ?placement:placement ->
  Platform.t ->
  Qca_circuit.Circuit.t ->
  result
(** Route a circuit onto the platform topology. The input circuit may use at
    most [Platform.qubit_count] qubits; the result uses physical indices.
    The default strategy is [Greedy] (the historical baseline);
    {!Compiler.compile} defaults to [Sabre]. Raises [Invalid_argument] if
    the circuit needs more qubits than the platform offers or contains
    >2-qubit unitaries (decompose first). *)

val overhead : Platform.t -> result -> original:Qca_circuit.Circuit.t -> float * float
(** [(gate_overhead, latency_overhead)]: ratios of routed/original two-qubit
    gate count and of routed/original ASAP makespan. *)
