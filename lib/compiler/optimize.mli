(** Optimising pass pipeline: peephole rewriting, commutation-aware Rz
    accumulation, Euler resynthesis of single-qubit runs, and two-qubit
    block consolidation.

    {b Contract.} Every pass preserves the circuit's semantics: for
    measurement-free circuits the output is unitarily equivalent to the
    input up to a global phase (checkable with
    {!Decompose.check_equivalent}); for circuits with [Prep]/[Measure]
    the measurement-outcome distribution at every measurement point is
    unchanged (the only non-unitary rewrites are dropping a phase that
    is immediately reset by [Prep] and commuting an [Rz] past a Z-basis
    measurement, both of which are distribution-invariant). Passes never
    add qubits, never reorder instructions across a [Barrier], and never
    move anything across a classically-conditioned gate that shares a
    wire or its source bit.

    The catalog of rewrite rules, their soundness arguments, and tuning
    knobs are documented in [docs/compiler.md]. *)

type stats = {
  removed_pairs : int;  (** U·U† pairs cancelled (dependency-adjacent). *)
  merged_rotations : int;
      (** Same-axis rotation pairs folded into one, plus named-pair
          contractions such as [S·S → Z]. *)
  dropped_identities : int;  (** [I] gates and ~0-angle rotations removed. *)
  conjugations : int;  (** [H·B·H → B'] basis-change rewrites applied. *)
  euler_runs : int;  (** 1q runs resynthesised to a shorter Euler form. *)
  consolidations : int;  (** 2q blocks re-expressed with fewer entanglers. *)
  rounds : int;  (** Fixed-point rounds in which at least one pass fired. *)
}

(** Target form for resynthesised single-qubit runs. *)
type basis =
  | Zyz  (** [Rz·Ry·Rz] — at most three rotations; logical circuits. *)
  | Pulse
      (** [Rz·X90·Rz·X90·Rz] — at most two real pulses framed by virtual
          Z rotations; pulse-level platforms such as superconducting_17. *)

type config = {
  basis : basis option;
      (** Euler resynthesis target; [None] disables the pass (used when
          the platform lacks x90/y90/rz primitives). *)
  platform : Platform.t option;
      (** When set, peephole contractions and consolidation candidates
          are restricted to the platform's native primitives, so the
          pipeline can run after decomposition/mapping without
          reintroducing non-primitive gates. *)
  consolidate : bool;  (** Enable two-qubit block consolidation. *)
  max_rounds : int;  (** Fixed-point iteration bound. *)
}

val logical_config : config
(** All passes on, [Zyz] basis, no platform restriction. *)

val physical_config : Platform.t -> config
(** Platform-restricted pipeline; picks [Pulse] basis when the platform
    natively supports x90/y90/rz, otherwise disables resynthesis. *)

(** Pipeline selector used by {!Compiler.compile}: [Basic] is the
    pre-pipeline single sweep (cancellation/merging only), [Full] the
    complete pass pipeline. *)
type level = Basic | Full

val pipeline :
  ?config:config ->
  ?on_pass:
    (round:int ->
    pass:string ->
    before:Qca_circuit.Circuit.t ->
    Qca_circuit.Circuit.t ->
    unit) ->
  Qca_circuit.Circuit.t ->
  Qca_circuit.Circuit.t * stats
(** Run the pass list to a fixed point (bounded by [config.max_rounds]).
    [on_pass] fires after every pass application that changed the
    circuit, with the round number, the pass name ([peephole], [rz-merge],
    [euler], [2q-blocks]) and the circuit before/after — this is how
    {!Compiler.compile} feeds each intermediate artifact to the
    {!Qca_analysis} pass-verifier and the trace layer. Termination:
    every counted rewrite strictly reduces the (gate count, non-Rz gate
    count) pair, so the fixed point is reached in finitely many rounds
    even without the bound. *)

val run : Qca_circuit.Circuit.t -> Qca_circuit.Circuit.t * stats
(** {!pipeline} with {!logical_config}. *)

val run_circuit : Qca_circuit.Circuit.t -> Qca_circuit.Circuit.t
(** [run] without the statistics. *)

val run_basic : Qca_circuit.Circuit.t -> Qca_circuit.Circuit.t * stats
(** The legacy single-sweep optimiser (inverse-pair cancellation,
    same-axis merging and identity removal between dependency-adjacent
    instructions only), kept as the [--optimize basic] baseline for
    benchmarking the full pipeline against. *)

(**/**)

(* Exposed for white-box tests and the bench harness. *)

val normalize_angle : float -> float
val zyz_angles : Qca_util.Matrix.t -> float * float * float
val gates_zyz : int -> float * float * float -> Qca_circuit.Gate.t list
val gates_pulse : int -> float * float * float -> Qca_circuit.Gate.t list
val local_factors : Qca_util.Matrix.t -> (Qca_util.Matrix.t * Qca_util.Matrix.t) option

(**/**)
