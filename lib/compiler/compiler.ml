module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Trace = Qca_util.Trace

type mode = Perfect | Realistic | Real

type pass_stat = {
  pass_name : string;
  gates : int;
  two_qubit_gates : int;
  depth : int;
  note : string;
}

type pass_artifact =
  | Circuit_stage of Circuit.t
  | Schedule_stage of Schedule.t
  | Eqasm_stage of Eqasm.program

type output = {
  platform : Platform.t;
  mode : mode;
  logical : Circuit.t;
  physical : Circuit.t;
  schedule : Schedule.t;
  eqasm : Eqasm.program option;
  cqasm : string;
  mapping : Mapping.result option;
  passes : pass_stat list;
}

let mode_to_string = function
  | Perfect -> "perfect"
  | Realistic -> "realistic"
  | Real -> "real"

let stat_of ?(note = "") pass_name circuit =
  {
    pass_name;
    gates = Circuit.gate_count circuit;
    two_qubit_gates = Circuit.two_qubit_gate_count circuit;
    depth = Circuit.depth circuit;
    note;
  }

let widen platform circuit =
  if Circuit.qubit_count circuit = platform.Platform.qubit_count then circuit
  else if Circuit.qubit_count circuit > platform.Platform.qubit_count then
    invalid_arg "Compiler.compile: circuit larger than platform"
  else
    Circuit.of_list ~name:(Circuit.name circuit) platform.Platform.qubit_count
      (Circuit.instructions circuit)

(* One span per compiler pass, carrying the gate-count delta the pass
   produced. The annotations are lazy so a disabled trace never walks the
   circuit; the [input -> output] circuits also feed the pass_stat table. *)
let traced_pass name ~input f =
  Trace.with_span ("compiler." ^ name) (fun sp ->
      Trace.annotate sp (fun () -> [ ("gates_in", Trace.Int (Circuit.gate_count input)) ]);
      let output = f () in
      Trace.annotate sp (fun () ->
          [
            ("gates_out", Trace.Int (Circuit.gate_count output));
            ("two_qubit", Trace.Int (Circuit.two_qubit_gate_count output));
            ("depth", Trace.Int (Circuit.depth output));
          ]);
      output)

let compile ?(strategy = Mapping.Sabre) ?(placement = Mapping.Trivial)
    ?(schedule_policy = Schedule.Asap) ?(optimizer = Optimize.Full) ?observer
    platform mode logical =
  Trace.with_span "compiler.compile" (fun compile_sp ->
  Trace.annotate compile_sp (fun () ->
      [
        ("platform", Trace.String platform.Platform.name);
        ("mode", Trace.String (mode_to_string mode));
      ]);
  let observe name artifact =
    match observer with None -> () | Some f -> f name artifact
  in
  let passes = ref [ stat_of "input" logical ] in
  let record ?note name circuit = passes := stat_of ?note name circuit :: !passes in
  (* Run the optimizer as a named stage: each pipeline pass that changes the
     circuit gets its own trace span, pass_stat row (with gate/depth deltas)
     and observer artifact, so the pass-verifier can blame it individually. *)
  let optimize_stage stage config input =
    Trace.with_span ("compiler." ^ stage) (fun sp ->
        Trace.annotate sp (fun () ->
            [ ("gates_in", Trace.Int (Circuit.gate_count input)) ]);
        let optimized, ostats =
          match optimizer with
          | Optimize.Basic -> Optimize.run_basic input
          | Optimize.Full ->
              let on_pass ~round ~pass ~before after =
                let name = stage ^ "/" ^ pass in
                Trace.with_span ("compiler." ^ name) (fun psp ->
                    Trace.annotate psp (fun () ->
                        [
                          ("round", Trace.Int round);
                          ("gates_in", Trace.Int (Circuit.gate_count before));
                          ("gates_out", Trace.Int (Circuit.gate_count after));
                          ("depth_in", Trace.Int (Circuit.depth before));
                          ("depth_out", Trace.Int (Circuit.depth after));
                        ]));
                record
                  ~note:
                    (Printf.sprintf "round=%d dgates=%+d ddepth=%+d" round
                       (Circuit.gate_count after - Circuit.gate_count before)
                       (Circuit.depth after - Circuit.depth before))
                  name after;
                observe name (Circuit_stage after)
              in
              Optimize.pipeline ~config ~on_pass input
        in
        Trace.annotate sp (fun () ->
            [
              ("gates_out", Trace.Int (Circuit.gate_count optimized));
              ("cancelled", Trace.Int ostats.Optimize.removed_pairs);
              ("merged", Trace.Int ostats.Optimize.merged_rotations);
              ("conjugated", Trace.Int ostats.Optimize.conjugations);
              ("euler", Trace.Int ostats.Optimize.euler_runs);
              ("blocks", Trace.Int ostats.Optimize.consolidations);
              ("rounds", Trace.Int ostats.Optimize.rounds);
            ]);
        record
          ~note:
            (Printf.sprintf
               "cancelled=%d merged=%d dropped=%d conj=%d euler=%d blocks=%d"
               ostats.Optimize.removed_pairs ostats.Optimize.merged_rotations
               ostats.Optimize.dropped_identities ostats.Optimize.conjugations
               ostats.Optimize.euler_runs ostats.Optimize.consolidations)
          stage optimized;
        observe stage (Circuit_stage optimized);
        optimized)
  in
  match mode with
  | Perfect ->
      observe "input" (Circuit_stage logical);
      let optimized = optimize_stage "optimize" Optimize.logical_config logical in
      let schedule =
        Trace.with_span "compiler.schedule" (fun sp ->
            let schedule = Schedule.run ~policy:schedule_policy platform optimized in
            Trace.annotate sp (fun () ->
                [ ("makespan_cycles", Trace.Int schedule.Schedule.makespan) ]);
            schedule)
      in
      observe "schedule" (Schedule_stage schedule);
      {
        platform;
        mode;
        logical;
        physical = optimized;
        schedule;
        eqasm = None;
        cqasm = Cqasm.emit_circuit optimized;
        mapping = None;
        passes = List.rev !passes;
      }
  | Realistic | Real ->
      let widened = widen platform logical in
      observe "input" (Circuit_stage widened);
      (* 1. optimise at the logical level first: algebraic structure (H
         conjugations, named-gate contractions) is cheaper to exploit
         before decomposition smears it into primitives. *)
      let pre_optimized =
        match optimizer with
        | Optimize.Basic -> widened
        | Optimize.Full ->
            optimize_stage "pre-opt" Optimize.logical_config widened
      in
      (* 2. decompose to primitives (+ swap for routing support) *)
      let swap_capable =
        {
          platform with
          Platform.primitives = "swap" :: platform.Platform.primitives;
        }
      in
      let lowered =
        traced_pass "decompose" ~input:pre_optimized (fun () ->
            Decompose.run swap_capable pre_optimized)
      in
      record "decompose" lowered;
      observe "decompose" (Circuit_stage lowered);
      (* 3. place & route *)
      let mapping =
        Trace.with_span "compiler.map" (fun sp ->
            Trace.annotate sp (fun () ->
                [ ("gates_in", Trace.Int (Circuit.gate_count lowered)) ]);
            let mapping = Mapping.run ~strategy ~placement platform lowered in
            Trace.annotate sp (fun () ->
                [
                  ("gates_out", Trace.Int (Circuit.gate_count mapping.Mapping.circuit));
                  ("swaps", Trace.Int mapping.Mapping.swaps_added);
                ]);
            mapping)
      in
      record
        ~note:(Printf.sprintf "swaps=%d" mapping.Mapping.swaps_added)
        "map/route" mapping.Mapping.circuit;
      observe "map/route" (Circuit_stage mapping.Mapping.circuit);
      (* 4. expand routing swaps into primitives *)
      let expanded =
        traced_pass "expand-swaps" ~input:mapping.Mapping.circuit (fun () ->
            Decompose.run platform mapping.Mapping.circuit)
      in
      record "expand-swaps" expanded;
      observe "expand-swaps" (Circuit_stage expanded);
      (* 5. optimise in the platform's native basis *)
      let optimized =
        optimize_stage "optimize" (Optimize.physical_config platform) expanded
      in
      (* 6. schedule with platform timing *)
      let schedule =
        Trace.with_span "compiler.schedule" (fun sp ->
            let schedule = Schedule.run ~policy:schedule_policy platform optimized in
            Trace.annotate sp (fun () ->
                [ ("makespan_cycles", Trace.Int schedule.Schedule.makespan) ]);
            schedule)
      in
      observe "schedule" (Schedule_stage schedule);
      (* 7. lower to eQASM *)
      let eqasm =
        Trace.with_span "compiler.eqasm" (fun sp ->
            let eqasm = Eqasm.of_schedule platform schedule in
            Trace.annotate sp (fun () ->
                let s = Eqasm.stats eqasm in
                [
                  ("bundles", Trace.Int s.Eqasm.bundle_count);
                  ("quantum_ops", Trace.Int s.Eqasm.total_quantum_ops);
                  ("duration_ns", Trace.Int s.Eqasm.duration_ns);
                ]);
            eqasm)
      in
      observe "eqasm" (Eqasm_stage eqasm);
      {
        platform;
        mode;
        logical;
        physical = optimized;
        schedule;
        eqasm = Some eqasm;
        cqasm = Cqasm.emit_circuit optimized;
        mapping = Some mapping;
        passes = List.rev !passes;
      })

let execute_result ?(shots = 1024) ?seed ?rng output =
  let noise =
    match output.mode with
    | Perfect -> Qca_qx.Noise.ideal
    | Realistic | Real -> output.platform.Platform.noise
  in
  Qca_qx.Engine.run ~noise ?seed ?rng ~shots output.physical

let execute ?shots ?rng output =
  (execute_result ?shots ?rng output).Qca_qx.Engine.histogram

let report output =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer
    (Printf.sprintf "compile %s on %s (%s mode)\n" (Circuit.name output.logical)
       output.platform.Platform.name
       (mode_to_string output.mode));
  Buffer.add_string buffer
    (Printf.sprintf "%-14s %8s %8s %8s  %s\n" "pass" "gates" "2q" "depth" "notes");
  List.iter
    (fun s ->
      Buffer.add_string buffer
        (Printf.sprintf "%-14s %8d %8d %8d  %s\n" s.pass_name s.gates s.two_qubit_gates
           s.depth s.note))
    output.passes;
  Buffer.add_string buffer
    (Printf.sprintf "schedule: makespan=%d cycles, parallelism=%.2f, peak=%d\n"
       output.schedule.Schedule.makespan
       (Schedule.parallelism output.schedule)
       (Schedule.max_concurrency output.schedule));
  (match output.eqasm with
  | Some program ->
      let s = Eqasm.stats program in
      Buffer.add_string buffer
        (Printf.sprintf "eqasm: %d bundles, %d mask regs, %d ops, %d ns\n"
           s.Eqasm.bundle_count s.Eqasm.mask_registers_used s.Eqasm.total_quantum_ops
           s.Eqasm.duration_ns)
  | None -> ());
  Buffer.contents buffer
