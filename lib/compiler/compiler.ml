module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Trace = Qca_util.Trace

type mode = Perfect | Realistic | Real

type pass_stat = {
  pass_name : string;
  gates : int;
  two_qubit_gates : int;
  depth : int;
  note : string;
}

type pass_artifact =
  | Circuit_stage of Circuit.t
  | Schedule_stage of Schedule.t
  | Eqasm_stage of Eqasm.program

type output = {
  platform : Platform.t;
  mode : mode;
  logical : Circuit.t;
  physical : Circuit.t;
  schedule : Schedule.t;
  eqasm : Eqasm.program option;
  cqasm : string;
  mapping : Mapping.result option;
  passes : pass_stat list;
}

let mode_to_string = function
  | Perfect -> "perfect"
  | Realistic -> "realistic"
  | Real -> "real"

let stat_of ?(note = "") pass_name circuit =
  {
    pass_name;
    gates = Circuit.gate_count circuit;
    two_qubit_gates = Circuit.two_qubit_gate_count circuit;
    depth = Circuit.depth circuit;
    note;
  }

let widen platform circuit =
  if Circuit.qubit_count circuit = platform.Platform.qubit_count then circuit
  else if Circuit.qubit_count circuit > platform.Platform.qubit_count then
    invalid_arg "Compiler.compile: circuit larger than platform"
  else
    Circuit.of_list ~name:(Circuit.name circuit) platform.Platform.qubit_count
      (Circuit.instructions circuit)

(* One span per compiler pass, carrying the gate-count delta the pass
   produced. The annotations are lazy so a disabled trace never walks the
   circuit; the [input -> output] circuits also feed the pass_stat table. *)
let traced_pass name ~input f =
  Trace.with_span ("compiler." ^ name) (fun sp ->
      Trace.annotate sp (fun () -> [ ("gates_in", Trace.Int (Circuit.gate_count input)) ]);
      let output = f () in
      Trace.annotate sp (fun () ->
          [
            ("gates_out", Trace.Int (Circuit.gate_count output));
            ("two_qubit", Trace.Int (Circuit.two_qubit_gate_count output));
            ("depth", Trace.Int (Circuit.depth output));
          ]);
      output)

let compile ?(strategy = Mapping.Greedy) ?(placement = Mapping.Trivial)
    ?(schedule_policy = Schedule.Asap) ?observer platform mode logical =
  Trace.with_span "compiler.compile" (fun compile_sp ->
  Trace.annotate compile_sp (fun () ->
      [
        ("platform", Trace.String platform.Platform.name);
        ("mode", Trace.String (mode_to_string mode));
      ]);
  let observe name artifact =
    match observer with None -> () | Some f -> f name artifact
  in
  let passes = ref [ stat_of "input" logical ] in
  let record ?note name circuit = passes := stat_of ?note name circuit :: !passes in
  match mode with
  | Perfect ->
      observe "input" (Circuit_stage logical);
      let optimized, ostats =
        Trace.with_span "compiler.optimize" (fun sp ->
            Trace.annotate sp (fun () ->
                [ ("gates_in", Trace.Int (Circuit.gate_count logical)) ]);
            let optimized, ostats = Optimize.run logical in
            Trace.annotate sp (fun () ->
                [
                  ("gates_out", Trace.Int (Circuit.gate_count optimized));
                  ("cancelled", Trace.Int ostats.Optimize.removed_pairs);
                  ("merged", Trace.Int ostats.Optimize.merged_rotations);
                ]);
            (optimized, ostats))
      in
      record
        ~note:
          (Printf.sprintf "cancelled=%d merged=%d dropped=%d" ostats.Optimize.removed_pairs
             ostats.Optimize.merged_rotations ostats.Optimize.dropped_identities)
        "optimize" optimized;
      observe "optimize" (Circuit_stage optimized);
      let schedule =
        Trace.with_span "compiler.schedule" (fun sp ->
            let schedule = Schedule.run ~policy:schedule_policy platform optimized in
            Trace.annotate sp (fun () ->
                [ ("makespan_cycles", Trace.Int schedule.Schedule.makespan) ]);
            schedule)
      in
      observe "schedule" (Schedule_stage schedule);
      {
        platform;
        mode;
        logical;
        physical = optimized;
        schedule;
        eqasm = None;
        cqasm = Cqasm.emit_circuit optimized;
        mapping = None;
        passes = List.rev !passes;
      }
  | Realistic | Real ->
      let widened = widen platform logical in
      observe "input" (Circuit_stage widened);
      (* 1. decompose to primitives (+ swap for routing support) *)
      let swap_capable =
        {
          platform with
          Platform.primitives = "swap" :: platform.Platform.primitives;
        }
      in
      let lowered =
        traced_pass "decompose" ~input:widened (fun () -> Decompose.run swap_capable widened)
      in
      record "decompose" lowered;
      observe "decompose" (Circuit_stage lowered);
      (* 2. place & route *)
      let mapping =
        Trace.with_span "compiler.map" (fun sp ->
            Trace.annotate sp (fun () ->
                [ ("gates_in", Trace.Int (Circuit.gate_count lowered)) ]);
            let mapping = Mapping.run ~strategy ~placement platform lowered in
            Trace.annotate sp (fun () ->
                [
                  ("gates_out", Trace.Int (Circuit.gate_count mapping.Mapping.circuit));
                  ("swaps", Trace.Int mapping.Mapping.swaps_added);
                ]);
            mapping)
      in
      record
        ~note:(Printf.sprintf "swaps=%d" mapping.Mapping.swaps_added)
        "map/route" mapping.Mapping.circuit;
      observe "map/route" (Circuit_stage mapping.Mapping.circuit);
      (* 3. expand routing swaps into primitives *)
      let expanded =
        traced_pass "expand-swaps" ~input:mapping.Mapping.circuit (fun () ->
            Decompose.run platform mapping.Mapping.circuit)
      in
      record "expand-swaps" expanded;
      observe "expand-swaps" (Circuit_stage expanded);
      (* 4. optimise *)
      let optimized, ostats =
        Trace.with_span "compiler.optimize" (fun sp ->
            Trace.annotate sp (fun () ->
                [ ("gates_in", Trace.Int (Circuit.gate_count expanded)) ]);
            let optimized, ostats = Optimize.run expanded in
            Trace.annotate sp (fun () ->
                [
                  ("gates_out", Trace.Int (Circuit.gate_count optimized));
                  ("cancelled", Trace.Int ostats.Optimize.removed_pairs);
                  ("merged", Trace.Int ostats.Optimize.merged_rotations);
                ]);
            (optimized, ostats))
      in
      record
        ~note:
          (Printf.sprintf "cancelled=%d merged=%d dropped=%d" ostats.Optimize.removed_pairs
             ostats.Optimize.merged_rotations ostats.Optimize.dropped_identities)
        "optimize" optimized;
      observe "optimize" (Circuit_stage optimized);
      (* 5. schedule with platform timing *)
      let schedule =
        Trace.with_span "compiler.schedule" (fun sp ->
            let schedule = Schedule.run ~policy:schedule_policy platform optimized in
            Trace.annotate sp (fun () ->
                [ ("makespan_cycles", Trace.Int schedule.Schedule.makespan) ]);
            schedule)
      in
      observe "schedule" (Schedule_stage schedule);
      (* 6. lower to eQASM *)
      let eqasm =
        Trace.with_span "compiler.eqasm" (fun sp ->
            let eqasm = Eqasm.of_schedule platform schedule in
            Trace.annotate sp (fun () ->
                let s = Eqasm.stats eqasm in
                [
                  ("bundles", Trace.Int s.Eqasm.bundle_count);
                  ("quantum_ops", Trace.Int s.Eqasm.total_quantum_ops);
                  ("duration_ns", Trace.Int s.Eqasm.duration_ns);
                ]);
            eqasm)
      in
      observe "eqasm" (Eqasm_stage eqasm);
      {
        platform;
        mode;
        logical;
        physical = optimized;
        schedule;
        eqasm = Some eqasm;
        cqasm = Cqasm.emit_circuit optimized;
        mapping = Some mapping;
        passes = List.rev !passes;
      })

let execute_result ?(shots = 1024) ?seed ?rng output =
  let noise =
    match output.mode with
    | Perfect -> Qca_qx.Noise.ideal
    | Realistic | Real -> output.platform.Platform.noise
  in
  Qca_qx.Engine.run ~noise ?seed ?rng ~shots output.physical

let execute ?shots ?rng output =
  (execute_result ?shots ?rng output).Qca_qx.Engine.histogram

let report output =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer
    (Printf.sprintf "compile %s on %s (%s mode)\n" (Circuit.name output.logical)
       output.platform.Platform.name
       (mode_to_string output.mode));
  Buffer.add_string buffer
    (Printf.sprintf "%-14s %8s %8s %8s  %s\n" "pass" "gates" "2q" "depth" "notes");
  List.iter
    (fun s ->
      Buffer.add_string buffer
        (Printf.sprintf "%-14s %8d %8d %8d  %s\n" s.pass_name s.gates s.two_qubit_gates
           s.depth s.note))
    output.passes;
  Buffer.add_string buffer
    (Printf.sprintf "schedule: makespan=%d cycles, parallelism=%.2f, peak=%d\n"
       output.schedule.Schedule.makespan
       (Schedule.parallelism output.schedule)
       (Schedule.max_concurrency output.schedule));
  (match output.eqasm with
  | Some program ->
      let s = Eqasm.stats program in
      Buffer.add_string buffer
        (Printf.sprintf "eqasm: %d bundles, %d mask regs, %d ops, %d ns\n"
           s.Eqasm.bundle_count s.Eqasm.mask_registers_used s.Eqasm.total_quantum_ops
           s.Eqasm.duration_ns)
  | None -> ());
  Buffer.contents buffer
