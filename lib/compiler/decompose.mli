(** Gate decomposition pass: rewrite every gate into the platform's native
    primitive set (section 2.4's "quantum gate decomposition"). *)

val expand : Qca_circuit.Gate.unitary -> int array -> Qca_circuit.Gate.t list
(** One rewrite step toward the {x90, mx90, y90, my90, rz, cz} basis; the
    result may still need further expansion. *)

val run : Platform.t -> Qca_circuit.Circuit.t -> Qca_circuit.Circuit.t
(** Recursively rewrite until every unitary is a platform primitive. Raises
    {!Qca_util.Error.Error} with [Unsupported_gate] if a gate cannot be
    expressed on the platform's primitive set. *)

val check_equivalent : Qca_circuit.Circuit.t -> Qca_circuit.Circuit.t -> bool
(** Compare full unitaries up to global phase (small circuits only; used by
    tests). Circuits must be measurement-free. *)
