(** Gate decomposition pass: rewrite every gate into the platform's native
    primitive set (section 2.4's "quantum gate decomposition").

    {b Pass contract}: the output circuit is unitarily equivalent to the
    input up to global phase — every rewrite step in {!expand} is a local
    matrix identity, so the composition preserves the program's semantics
    for every run plan. Measurements, preps, barriers and conditionals
    pass through untouched (a conditional's body gate is rewritten in
    place). The pass neither reorders instructions nor changes qubit
    indices; it only makes circuits longer, which is why
    {!Optimize.pipeline} runs both before it (on the small logical
    circuit) and after routing (to clean up the expansion). *)

val expand : Qca_circuit.Gate.unitary -> int array -> Qca_circuit.Gate.t list
(** One rewrite step toward the {x90, mx90, y90, my90, rz, cz} basis; the
    result may still need further expansion. The returned list is
    matrix-equal to the input gate up to global phase. *)

val run : Platform.t -> Qca_circuit.Circuit.t -> Qca_circuit.Circuit.t
(** Recursively rewrite until every unitary is a platform primitive. Raises
    {!Qca_util.Error.Error} with [Unsupported_gate] if a gate cannot be
    expressed on the platform's primitive set. The pass-verifier re-checks
    the result against the platform's primitive set (code [P02]) when
    compilation runs under {!Qca_analysis.Verify.compile}. *)

val check_equivalent : Qca_circuit.Circuit.t -> Qca_circuit.Circuit.t -> bool
(** Compare full unitaries up to global phase (small circuits only; used by
    tests and by {!Optimize}'s two-qubit block consolidation to validate
    candidate replacements). Circuits must be measurement-free. *)
