(** OpenQL-style pass manager (Figure 4).

    Compiles a logical circuit for one of the paper's three qubit models:

    - {b Perfect}: no decomposition to hardware primitives, no connectivity
      constraint; optimisation + unit-time scheduling only. The output runs
      on QX with ideal qubits (Figure 2b).
    - {b Realistic}: full pipeline — decompose, place & route, optimise,
      schedule with platform timing, lower to eQASM — executed on QX with
      the platform's error model.
    - {b Real}: same pipeline as Realistic; the eQASM output is what would
      be shipped to the physical device's micro-architecture (here the
      cycle-accurate model in [qca_microarch]). *)

type mode = Perfect | Realistic | Real

type pass_stat = {
  pass_name : string;
  gates : int;
  two_qubit_gates : int;
  depth : int;
  note : string;
}

type pass_artifact =
  | Circuit_stage of Qca_circuit.Circuit.t
  | Schedule_stage of Schedule.t
  | Eqasm_stage of Eqasm.program
      (** What a compiler pass produced, as handed to the [?observer] of
          {!compile}. Circuit-level passes emit [Circuit_stage]; the
          scheduler and eQASM lowering emit their own artifact kinds. *)

type output = {
  platform : Platform.t;
  mode : mode;
  logical : Qca_circuit.Circuit.t;  (** Input circuit. *)
  physical : Qca_circuit.Circuit.t;  (** After all circuit-level passes. *)
  schedule : Schedule.t;
  eqasm : Eqasm.program option;  (** [None] in Perfect mode. *)
  cqasm : string;  (** cQASM of the physical circuit. *)
  mapping : Mapping.result option;
  passes : pass_stat list;  (** One row per pass, in order. *)
}

val mode_to_string : mode -> string

val compile :
  ?strategy:Mapping.strategy ->
  ?placement:Mapping.placement ->
  ?schedule_policy:Schedule.policy ->
  ?optimizer:Optimize.level ->
  ?observer:(string -> pass_artifact -> unit) ->
  Platform.t ->
  mode ->
  Qca_circuit.Circuit.t ->
  output
(** Defaults: [strategy] is {!Mapping.Sabre} (pass [Greedy] for the
    historical baseline), [optimizer] is {!Optimize.Full} (the complete
    pass pipeline; [Basic] restores the pre-pipeline single sweep).

    [observer] (the pass-verifier hook) is called after every pass with the
    pass name (matching the {!pass_stat} rows: ["input"], ["pre-opt"],
    ["decompose"], ["map/route"], ["expand-swaps"], ["optimize"], plus
    ["schedule"] and ["eqasm"]) and the artifact it produced. With the
    [Full] optimizer, each individual optimizer pass that changed the
    circuit additionally reports as ["pre-opt/<pass>"] or
    ["optimize/<pass>"] (e.g. ["optimize/peephole"], ["optimize/euler"]),
    with per-pass gate/depth deltas in its pass_stat note — so
    [Qca_analysis.Verify] can blame a single rewrite pass and
    [qxc --metrics] can report per-pass deltas. When absent the pipeline
    pays one branch per pass. *)

val execute_result :
  ?shots:int ->
  ?seed:int ->
  ?rng:Qca_util.Rng.t ->
  output ->
  Qca_qx.Engine.result
(** Run the compiled circuit through {!Qca_qx.Engine.run}: ideal qubits in
    Perfect mode, the platform noise model otherwise. Terminal-measurement
    circuits under ideal noise take the single-pass sampled plan; the
    result carries the histogram plus the per-run metrics report. *)

val execute :
  ?shots:int -> ?rng:Qca_util.Rng.t -> output -> (string * int) list
(** [execute_result] reduced to the measured-bitstring histogram (kept for
    callers that only want counts). *)

val report : output -> string
(** Human-readable pass-by-pass compilation report (the E3 table rows). *)
