module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Matrix = Qca_util.Matrix
module Cplx = Qca_util.Cplx

(* ------------------------------------------------------------------ *)
(* Statistics and configuration                                        *)

type stats = {
  removed_pairs : int;
  merged_rotations : int;
  dropped_identities : int;
  conjugations : int;
  euler_runs : int;
  consolidations : int;
  rounds : int;
}

let zero_stats =
  {
    removed_pairs = 0;
    merged_rotations = 0;
    dropped_identities = 0;
    conjugations = 0;
    euler_runs = 0;
    consolidations = 0;
    rounds = 0;
  }

(* Per-pass rewrite counts, folded into [stats] by the driver. *)
type delta = {
  d_pairs : int;
  d_merges : int;
  d_drops : int;
  d_conj : int;
  d_euler : int;
  d_blocks : int;
}

let no_delta =
  { d_pairs = 0; d_merges = 0; d_drops = 0; d_conj = 0; d_euler = 0; d_blocks = 0 }

let delta_total d =
  d.d_pairs + d.d_merges + d.d_drops + d.d_conj + d.d_euler + d.d_blocks

let fold_delta s d =
  {
    s with
    removed_pairs = s.removed_pairs + d.d_pairs;
    merged_rotations = s.merged_rotations + d.d_merges;
    dropped_identities = s.dropped_identities + d.d_drops;
    conjugations = s.conjugations + d.d_conj;
    euler_runs = s.euler_runs + d.d_euler;
    consolidations = s.consolidations + d.d_blocks;
  }

type basis = Zyz | Pulse

type config = {
  basis : basis option;
  platform : Platform.t option;
  consolidate : bool;
  max_rounds : int;
}

let logical_config =
  { basis = Some Zyz; platform = None; consolidate = true; max_rounds = 12 }

let physical_config p =
  let pulse_native =
    Platform.supports p Gate.X90 && Platform.supports p Gate.Y90
    && Platform.supports p (Gate.Rz 0.0)
  in
  {
    basis = (if pulse_native then Some Pulse else None);
    platform = Some p;
    consolidate = true;
    max_rounds = 12;
  }

type level = Basic | Full

(* ------------------------------------------------------------------ *)
(* Angle and instruction helpers                                       *)

let two_pi = 2.0 *. Float.pi
let half_pi = Float.pi /. 2.0
let quarter_pi = Float.pi /. 4.0

(* Normalise a rotation angle into (-pi, pi]. *)
let normalize_angle theta =
  let t = Float.rem theta two_pi in
  let t = if t > Float.pi then t -. two_pi else t in
  if t <= -.Float.pi then t +. two_pi else t

let is_null_rotation theta = Float.abs (normalize_angle theta) < 1e-12

let is_droppable = function
  | Gate.Unitary (Gate.I, _) -> true
  | Gate.Unitary ((Gate.Rx t | Gate.Ry t | Gate.Rz t | Gate.Cphase t), _) ->
      is_null_rotation t
  | _ -> false

(* Qubits an instruction reads or writes, including a conditional's
   classical bit (treated as its source qubit for ordering purposes). *)
let footprint = function
  | Gate.Unitary (_, ops) -> ops
  | Gate.Conditional (bit, _, ops) -> Array.append [| bit |] ops
  | Gate.Prep q | Gate.Measure q -> [| q |]
  | Gate.Barrier qs -> qs

let touches fp q = Array.exists (fun x -> x = q) fp
let overlaps a b = Array.exists (fun q -> touches b q) a

let close_to a b = Float.abs (a -. b) < 1e-12

let unitary_matches u v =
  match (u, v) with
  | Gate.Rx a, Gate.Rx b
  | Gate.Ry a, Gate.Ry b
  | Gate.Rz a, Gate.Rz b
  | Gate.Cphase a, Gate.Cphase b ->
      close_to a b || close_to (normalize_angle a) (normalize_angle b)
  | Gate.Crk a, Gate.Crk b -> a = b
  | _ -> u = v

(* Gates whose operand order is irrelevant. *)
let symmetric_ops = function
  | Gate.Cz | Gate.Swap | Gate.Cphase _ | Gate.Crk _ -> true
  | _ -> false

let same_operands u ops ops' =
  ops = ops'
  || symmetric_ops u
     && Array.length ops = 2
     && Array.length ops' = 2
     && ops.(0) = ops'.(1)
     && ops.(1) = ops'.(0)

let cancels a b =
  match (a, b) with
  | Gate.Unitary (u, ops), Gate.Unitary (v, ops') ->
      same_operands u ops ops' && unitary_matches (Gate.adjoint u) v
  | _ -> false

(* Merge two same-axis rotations into one; None when not mergeable. *)
let merge a b =
  match (a, b) with
  | Gate.Unitary (Gate.Rx t1, ops), Gate.Unitary (Gate.Rx t2, ops')
    when ops = ops' ->
      Some (Gate.Unitary (Gate.Rx (normalize_angle (t1 +. t2)), ops))
  | Gate.Unitary (Gate.Ry t1, ops), Gate.Unitary (Gate.Ry t2, ops')
    when ops = ops' ->
      Some (Gate.Unitary (Gate.Ry (normalize_angle (t1 +. t2)), ops))
  | Gate.Unitary (Gate.Rz t1, ops), Gate.Unitary (Gate.Rz t2, ops')
    when ops = ops' ->
      Some (Gate.Unitary (Gate.Rz (normalize_angle (t1 +. t2)), ops))
  | Gate.Unitary (Gate.Cphase t1, ops), Gate.Unitary (Gate.Cphase t2, ops')
    when same_operands (Gate.Cphase t1) ops ops' ->
      Some (Gate.Unitary (Gate.Cphase (normalize_angle (t1 +. t2)), ops))
  | _ -> None

(* Named-pair contractions, all verified equal up to global phase. *)
let pair_rewrite u v =
  match (u, v) with
  | Gate.X90, Gate.X90 | Gate.Xm90, Gate.Xm90 -> Some Gate.X
  | Gate.Y90, Gate.Y90 | Gate.Ym90, Gate.Ym90 -> Some Gate.Y
  | Gate.S, Gate.S | Gate.Sdag, Gate.Sdag -> Some Gate.Z
  | Gate.T, Gate.T -> Some Gate.S
  | Gate.Tdag, Gate.Tdag -> Some Gate.Sdag
  | Gate.S, Gate.Z | Gate.Z, Gate.S -> Some Gate.Sdag
  | Gate.Sdag, Gate.Z | Gate.Z, Gate.Sdag -> Some Gate.S
  | Gate.X, Gate.X90 | Gate.X90, Gate.X -> Some Gate.Xm90
  | Gate.X, Gate.Xm90 | Gate.Xm90, Gate.X -> Some Gate.X90
  | Gate.Y, Gate.Y90 | Gate.Y90, Gate.Y -> Some Gate.Ym90
  | Gate.Y, Gate.Ym90 | Gate.Ym90, Gate.Y -> Some Gate.Y90
  | _ -> None

let emittable config u =
  match config.platform with None -> true | Some p -> Platform.supports p u

(* ------------------------------------------------------------------ *)
(* Commutation rules (conservative)                                    *)

let x_like = function
  | Gate.X | Gate.X90 | Gate.Xm90 | Gate.Rx _ -> true
  | _ -> false

let y_like = function
  | Gate.Y | Gate.Y90 | Gate.Ym90 | Gate.Ry _ -> true
  | _ -> false

(* Do two unitary instructions with overlapping operand sets commute?
   Only rules with a short algebraic proof are admitted; everything
   else is treated as a barrier. *)
let commute_overlapping (u, uops) (v, vops) =
  let diag_past_cnot dops cops = not (touches dops cops.(1)) in
  if Gate.is_diagonal u && Gate.is_diagonal v then true
  else
    match (u, v) with
    | Gate.Cnot, Gate.Cnot ->
        let c1 = uops.(0) and t1 = uops.(1) in
        let c2 = vops.(0) and t2 = vops.(1) in
        (c1 = c2 || t1 = t2) && c1 <> t2 && t1 <> c2
    | d, Gate.Cnot when Gate.is_diagonal d -> diag_past_cnot uops vops
    | Gate.Cnot, d when Gate.is_diagonal d -> diag_past_cnot vops uops
    | w, Gate.Cnot when Gate.arity w = 1 && x_like w -> uops.(0) = vops.(1)
    | Gate.Cnot, w when Gate.arity w = 1 && x_like w -> vops.(0) = uops.(1)
    | w, w' when Gate.arity w = 1 && Gate.arity w' = 1 ->
        (* Same qubit, same rotation axis. *)
        (x_like w && x_like w') || (y_like w && y_like w')
    | _ -> false

let commutes a b =
  match (a, b) with
  | Gate.Unitary (u, uops), Gate.Unitary (v, vops) ->
      (not (overlaps uops vops)) || commute_overlapping (u, uops) (v, vops)
  | _ -> not (overlaps (footprint a) (footprint b))

(* ------------------------------------------------------------------ *)
(* Pass 1: peephole — cancellation, merging, pair contraction and
   H-conjugation, with commutation-aware lookthrough.                  *)

let h_conjugate config blocker q =
  let mk u = Gate.Unitary (u, [| q |]) in
  let keep u g = if emittable config u then Some g else None in
  match blocker with
  | Gate.Unitary (v, vops) when Gate.arity v = 1 && vops.(0) = q -> (
      match v with
      | Gate.X -> keep Gate.Z (mk Gate.Z)
      | Gate.Z -> keep Gate.X (mk Gate.X)
      | Gate.Y -> Some (mk Gate.Y)
      | Gate.Rx t -> keep (Gate.Rz t) (mk (Gate.Rz t))
      | Gate.Rz t -> keep (Gate.Rx t) (mk (Gate.Rx t))
      | Gate.S -> keep Gate.X90 (mk Gate.X90)
      | Gate.Sdag -> keep Gate.Xm90 (mk Gate.Xm90)
      | Gate.T -> keep (Gate.Rx quarter_pi) (mk (Gate.Rx quarter_pi))
      | Gate.Tdag -> keep (Gate.Rx (-.quarter_pi)) (mk (Gate.Rx (-.quarter_pi)))
      | _ -> None)
  | Gate.Unitary (Gate.Cz, vops) when vops.(0) = q || vops.(1) = q ->
      let other = if vops.(0) = q then vops.(1) else vops.(0) in
      keep Gate.Cnot (Gate.Unitary (Gate.Cnot, [| other; q |]))
  | Gate.Unitary (Gate.Cnot, vops) when vops.(1) = q ->
      keep Gate.Cz (Gate.Unitary (Gate.Cz, Array.copy vops))
  | _ -> None

let peephole config instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let removed = Array.make n false in
  let d = ref no_delta in
  let next_on_qubit q from =
    let rec go k =
      if k >= n then None
      else if (not removed.(k)) && touches (footprint arr.(k)) q then Some k
      else go (k + 1)
    in
    go from
  in
  for i = 0 to n - 1 do
    if not removed.(i) then
      if is_droppable arr.(i) then begin
        removed.(i) <- true;
        d := { !d with d_drops = !d.d_drops + 1 }
      end
      else
        match arr.(i) with
        | Gate.Unitary (u, uops) ->
            (* Scan forward, skipping disjoint and commuting instructions,
               until a partner or a blocker is found. *)
            let rec scan j =
              if j >= n then ()
              else if removed.(j) then scan (j + 1)
              else begin
                let b = arr.(j) in
                if not (overlaps uops (footprint b)) then scan (j + 1)
                else if cancels arr.(i) b then begin
                  removed.(i) <- true;
                  removed.(j) <- true;
                  d := { !d with d_pairs = !d.d_pairs + 1 }
                end
                else
                  match merge arr.(i) b with
                  | Some g ->
                      removed.(i) <- true;
                      if is_droppable g then begin
                        removed.(j) <- true;
                        d := { !d with d_pairs = !d.d_pairs + 1 }
                      end
                      else begin
                        arr.(j) <- g;
                        d := { !d with d_merges = !d.d_merges + 1 }
                      end
                  | None -> (
                      let contraction =
                        match b with
                        | Gate.Unitary (v, vops) when vops = uops -> (
                            match pair_rewrite u v with
                            | Some w when emittable config w ->
                                Some (Gate.Unitary (w, vops))
                            | _ -> None)
                        | _ -> None
                      in
                      match contraction with
                      | Some g ->
                          removed.(i) <- true;
                          arr.(j) <- g;
                          d := { !d with d_merges = !d.d_merges + 1 }
                      | None ->
                          if commutes arr.(i) b then scan (j + 1)
                          else if u = Gate.H && Array.length uops = 1 then begin
                            (* Try H · B · H → B' where the closing H is the
                               next instruction on this qubit after the
                               blocker. *)
                            let q = uops.(0) in
                            match h_conjugate config b q with
                            | None -> ()
                            | Some g -> (
                                match next_on_qubit q (j + 1) with
                                | Some k
                                  when arr.(k) = Gate.Unitary (Gate.H, [| q |])
                                  ->
                                    removed.(i) <- true;
                                    removed.(k) <- true;
                                    arr.(j) <- g;
                                    d := { !d with d_conj = !d.d_conj + 1 }
                                | _ -> ())
                          end)
              end
            in
            scan (i + 1)
        | _ -> ()
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if not removed.(i) then out := arr.(i) :: !out
  done;
  (!out, !d)

(* ------------------------------------------------------------------ *)
(* Pass 2: commutation-aware Rz accumulation                           *)

let diag_angle = function
  | Gate.I -> Some 0.0
  | Gate.Z -> Some Float.pi
  | Gate.S -> Some half_pi
  | Gate.Sdag -> Some (-.half_pi)
  | Gate.T -> Some quarter_pi
  | Gate.Tdag -> Some (-.quarter_pi)
  | Gate.Rz t -> Some t
  | _ -> None

let rz_accumulate qubits instrs =
  let pending = Array.make qubits 0.0 in
  let has = Array.make qubits false in
  let out = ref [] in
  let d = ref no_delta in
  let emit i = out := i :: !out in
  let flush q =
    if has.(q) then begin
      has.(q) <- false;
      let t = normalize_angle pending.(q) in
      pending.(q) <- 0.0;
      if Float.abs t > 1e-12 then emit (Gate.Unitary (Gate.Rz t, [| q |]))
      else d := { !d with d_drops = !d.d_drops + 1 }
    end
  in
  List.iter
    (fun instr ->
      match instr with
      | Gate.Unitary (u, ops) when Gate.arity u = 1 -> (
          match diag_angle u with
          | Some t ->
              let q = ops.(0) in
              if has.(q) then d := { !d with d_merges = !d.d_merges + 1 };
              pending.(q) <- pending.(q) +. t;
              has.(q) <- true
          | None ->
              flush ops.(0);
              emit instr)
      | Gate.Unitary (u, _) when Gate.is_diagonal u ->
          (* Cz / Cphase / Crk: pending Rz commutes straight through. *)
          emit instr
      | Gate.Unitary (Gate.Cnot, ops) ->
          (* Rz commutes with the control, not the target. *)
          flush ops.(1);
          emit instr
      | Gate.Unitary (Gate.Swap, ops) ->
          (* Swap relabels the wires: carry pending phases across. *)
          let a = ops.(0) and b = ops.(1) in
          let ta = pending.(a) and ha = has.(a) in
          pending.(a) <- pending.(b);
          has.(a) <- has.(b);
          pending.(b) <- ta;
          has.(b) <- ha;
          emit instr
      | Gate.Unitary (Gate.Toffoli, ops) ->
          flush ops.(2);
          emit instr
      | Gate.Unitary (_, ops) ->
          Array.iter flush ops;
          emit instr
      | Gate.Conditional (_, _, ops) ->
          Array.iter flush ops;
          emit instr
      | Gate.Prep q ->
          (* A phase immediately before reset is unobservable. *)
          if has.(q) then begin
            has.(q) <- false;
            pending.(q) <- 0.0;
            d := { !d with d_drops = !d.d_drops + 1 }
          end;
          emit instr
      | Gate.Measure q ->
          (* A Z-basis measurement absorbs a pending phase: the rotation
             becomes a per-outcome global phase on the collapsed state, so
             it is unobservable and must not be re-emitted after the
             measure (that would un-terminalise terminal measurements). *)
          if has.(q) then begin
            has.(q) <- false;
            pending.(q) <- 0.0;
            d := { !d with d_drops = !d.d_drops + 1 }
          end;
          emit instr
      | Gate.Barrier qs ->
          Array.iter flush qs;
          emit instr)
    instrs;
  for q = 0 to qubits - 1 do
    flush q
  done;
  (List.rev !out, !d)

(* ------------------------------------------------------------------ *)
(* Pass 3: Euler resynthesis of single-qubit runs                      *)

let arg c = Float.atan2 (Cplx.im c) (Cplx.re c)

(* ZYZ angles (alpha, beta, gamma) with U ≃ Rz(alpha)·Ry(beta)·Rz(gamma)
   up to global phase. Accepts any nonzero scalar multiple of a 2x2
   unitary: normalisation by sqrt(det) absorbs the scale. *)
let zyz_angles m =
  let det =
    Cplx.sub
      (Cplx.mul (Matrix.get m 0 0) (Matrix.get m 1 1))
      (Cplx.mul (Matrix.get m 0 1) (Matrix.get m 1 0))
  in
  let s =
    let r = sqrt (Cplx.abs det) and a = arg det /. 2.0 in
    Cplx.scale r (Cplx.cis a)
  in
  let inv_s = Cplx.scale (1.0 /. Cplx.norm2 s) (Cplx.conj s) in
  let n00 = Cplx.mul inv_s (Matrix.get m 0 0) in
  let n10 = Cplx.mul inv_s (Matrix.get m 1 0) in
  let n11 = Cplx.mul inv_s (Matrix.get m 1 1) in
  let ca = Cplx.abs n00 and sa = Cplx.abs n10 in
  let beta = 2.0 *. Float.atan2 sa ca in
  if sa < 1e-9 then (2.0 *. arg n11, 0.0, 0.0)
  else if ca < 1e-9 then (2.0 *. arg n10, Float.pi, 0.0)
  else (arg n11 +. arg n10, beta, arg n11 -. arg n10)

(* Emission, in application order (leftmost gate applied first). *)
let gates_zyz q (alpha, beta, gamma) =
  let rz t =
    let t = normalize_angle t in
    if Float.abs t < 1e-12 then [] else [ Gate.Unitary (Gate.Rz t, [| q |]) ]
  in
  if Float.abs beta < 1e-9 then rz (alpha +. gamma)
  else if Float.abs (beta -. Float.pi) < 1e-9 then
    (* Rz(a)·Ry(pi)·Rz(g) = Rz(a-g)·Ry(pi) since Ry(pi)·Rz(g) = Rz(-g)·Ry(pi). *)
    [ Gate.Unitary (Gate.Ry Float.pi, [| q |]) ] @ rz (alpha -. gamma)
  else rz gamma @ [ Gate.Unitary (Gate.Ry beta, [| q |]) ] @ rz alpha

let gates_pulse q (alpha, beta, gamma) =
  let rz t =
    let t = normalize_angle t in
    if Float.abs t < 1e-12 then [] else [ Gate.Unitary (Gate.Rz t, [| q |]) ]
  in
  let g u = [ Gate.Unitary (u, [| q |]) ] in
  if Float.abs beta < 1e-9 then rz (alpha +. gamma)
  else if Float.abs (beta -. half_pi) < 1e-9 then rz gamma @ g Gate.Y90 @ rz alpha
  else if Float.abs (beta -. Float.pi) < 1e-9 then
    g Gate.Y90 @ g Gate.Y90 @ rz (alpha -. gamma)
  else
    (* Rz(a+pi)·X90·Rz(b+pi)·X90 ∝ Rz(a)·Ry(b): two frame-tracked X90
       pulses realise the middle Y rotation (virtual-Z decomposition). *)
    rz gamma @ g Gate.X90 @ rz (beta +. Float.pi) @ g Gate.X90
    @ rz (alpha +. Float.pi)

let emit_1q basis q m =
  let angles = zyz_angles m in
  match basis with Zyz -> gates_zyz q angles | Pulse -> gates_pulse q angles

(* (total gates, non-virtual pulses): Rz is free on hardware with frame
   tracking, so prefer fewer real pulses at equal count. *)
let cost_1q gates =
  let pulses =
    List.fold_left
      (fun acc g ->
        match g with Gate.Unitary (Gate.Rz _, _) -> acc | _ -> acc + 1)
      0 gates
  in
  (List.length gates, pulses)

let euler basis qubits instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let repl = Array.make n None in
  let d = ref no_delta in
  let current = Array.make qubits [] in
  let close q =
    let idxs = List.rev current.(q) in
    current.(q) <- [];
    match idxs with
    | [] | [ _ ] -> ()
    | first :: rest ->
        let old = List.map (fun i -> arr.(i)) idxs in
        let m =
          List.fold_left
            (fun acc instr ->
              match instr with
              | Gate.Unitary (u, _) -> Matrix.mul (Gate.matrix u) acc
              | _ -> acc)
            (Matrix.identity 2) old
        in
        let gates = emit_1q basis q m in
        if cost_1q gates < cost_1q old then begin
          repl.(first) <- Some gates;
          List.iter (fun i -> repl.(i) <- Some []) rest;
          d := { !d with d_euler = !d.d_euler + 1 }
        end
  in
  Array.iteri
    (fun i instr ->
      match instr with
      | Gate.Unitary (u, ops) when Gate.arity u = 1 ->
          current.(ops.(0)) <- i :: current.(ops.(0))
      | _ -> Array.iter (fun q -> if q < qubits then close q) (footprint instr))
    arr;
  for q = 0 to qubits - 1 do
    close q
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    match repl.(i) with
    | None -> out := arr.(i) :: !out
    | Some gates -> out := gates @ !out
  done;
  (!out, !d)

(* ------------------------------------------------------------------ *)
(* Pass 4: two-qubit block consolidation                               *)

(* Little-endian 4x4 unitary of a two-qubit gate list (qubit 0 = LSB). *)
let mat2 gates = Circuit.unitary_matrix (Circuit.of_list 2 gates)

(* If [m] is (a scalar multiple of) B ⊗ A acting as A on qubit 0 and B on
   qubit 1, recover the factors. Pivot on the largest entry: for a
   unitary tensor product it has magnitude ≥ 1/2, so the division is
   well-conditioned. *)
let local_factors m =
  let best = ref (0, 0) and bestv = ref 0.0 in
  for r = 0 to 3 do
    for c = 0 to 3 do
      let v = Cplx.abs (Matrix.get m r c) in
      if v > !bestv then begin
        bestv := v;
        best := (r, c)
      end
    done
  done;
  if !bestv < 1e-9 then None
  else
    let r, c = !best in
    let r0 = r land 1 and r1 = r lsr 1 in
    let c0 = c land 1 and c1 = c lsr 1 in
    let a =
      Matrix.make 2 2 (fun i j ->
          Matrix.get m ((r1 lsl 1) lor i) ((c1 lsl 1) lor j))
    in
    let b =
      Matrix.make 2 2 (fun i j ->
          Matrix.get m ((i lsl 1) lor r0) ((j lsl 1) lor c0))
    in
    let mrc = Matrix.get m r c in
    let inv = Cplx.scale (1.0 /. Cplx.norm2 mrc) (Cplx.conj mrc) in
    let recon = Matrix.scale inv (Matrix.kron b a) in
    if Matrix.approx_equal ~eps:1e-7 recon m then Some (a, b) else None

let local_gates (a, b) = gates_zyz 0 (zyz_angles a) @ gates_zyz 1 (zyz_angles b)

let entangler_templates =
  [
    [ Gate.Unitary (Gate.Cz, [| 0; 1 |]) ];
    [ Gate.Unitary (Gate.Cnot, [| 0; 1 |]) ];
    [ Gate.Unitary (Gate.Cnot, [| 1; 0 |]) ];
    [ Gate.Unitary (Gate.Swap, [| 0; 1 |]) ];
  ]

(* Candidate re-expressions of a 4x4 block unitary, cheapest shapes
   first: identity, pure locals, locals + one entangler. *)
let block_candidates m =
  let id =
    if Matrix.equal_up_to_phase ~eps:1e-7 m (Matrix.identity 4) then [ [] ]
    else []
  in
  let locals =
    match local_factors m with Some f -> [ local_gates f ] | None -> []
  in
  let with_entangler =
    List.concat_map
      (fun tg ->
        let gm = mat2 tg in
        let after = Matrix.mul m (Matrix.adjoint gm) in
        let before = Matrix.mul (Matrix.adjoint gm) m in
        (match local_factors after with
        | Some f -> [ tg @ local_gates f ]
        | None -> [])
        @
        match local_factors before with
        | Some f -> [ local_gates f @ tg ]
        | None -> [])
      entangler_templates
  in
  id @ locals @ with_entangler

(* (2q gates, total, pulses): the lexicographic objective mirrors real
   hardware cost where entanglers dominate. *)
let cost_2q instrs =
  let twoq =
    List.fold_left
      (fun acc g ->
        match g with
        | Gate.Unitary (u, _) when Gate.arity u = 2 -> acc + 1
        | _ -> acc)
      0 instrs
  in
  let _, pulses = cost_1q instrs in
  (twoq, List.length instrs, pulses)

let rec fixpoint_passes passes c budget =
  if budget = 0 then c
  else
    let c', changed =
      List.fold_left
        (fun (c, ch) f ->
          let c', d = f c in
          (c', ch || delta_total d > 0))
        (c, false) passes
    in
    if changed then fixpoint_passes passes c' (budget - 1) else c'

let rebuild template instrs =
  Circuit.of_list ~name:(Circuit.name template)
    (Circuit.qubit_count template) instrs

let peephole_pass config c =
  let instrs, d = peephole config (Circuit.instructions c) in
  (rebuild c instrs, d)

let rz_pass c =
  let instrs, d =
    rz_accumulate (Circuit.qubit_count c) (Circuit.instructions c)
  in
  (rebuild c instrs, d)

let euler_pass basis c =
  let instrs, d = euler basis (Circuit.qubit_count c) (Circuit.instructions c) in
  (rebuild c instrs, d)

(* Cheap 1q-only tightening used to polish consolidation candidates. *)
let polish config c =
  let passes =
    [ peephole_pass config ]
    @ (if emittable config (Gate.Rz 0.0) then [ rz_pass ] else [])
    @ match config.basis with Some b -> [ euler_pass b ] | None -> []
  in
  fixpoint_passes passes c 4

let render_candidate config m gates =
  let c = Circuit.of_list 2 gates in
  let lowered =
    match config.platform with
    | None -> Some c
    | Some p -> ( try Some (Decompose.run p c) with _ -> None)
  in
  match lowered with
  | None -> None
  | Some c ->
      let c = polish config c in
      (* Belt and braces: accept only if the rendered candidate still
         implements the block unitary. *)
      if Matrix.equal_up_to_phase ~eps:1e-7 (Circuit.unitary_matrix c) m then
        Some (Circuit.instructions c)
      else None

let consolidate config circuit =
  let arr = Array.of_list (Circuit.instructions circuit) in
  let n = Array.length arr in
  let repl = Array.make n None in
  let consumed = Array.make n false in
  let d = ref no_delta in
  let plain_1q_on q i =
    match arr.(i) with
    | Gate.Unitary (u, ops) -> Gate.arity u = 1 && ops.(0) = q
    | _ -> false
  in
  for i = 0 to n - 1 do
    if not consumed.(i) then
      match arr.(i) with
      | Gate.Unitary (u0, ops0) when Gate.arity u0 = 2 && ops0.(0) <> ops0.(1)
        ->
          let a = ops0.(0) and b = ops0.(1) in
          let in_pair q = q = a || q = b in
          let within k =
            match arr.(k) with
            | Gate.Unitary (u, ops) ->
                (Gate.arity u = 1 && in_pair ops.(0))
                || Gate.arity u = 2
                   && in_pair ops.(0) && in_pair ops.(1)
                   && ops.(0) <> ops.(1)
            | _ -> false
          in
          (* Leading 1q gates slide forward into the block: the walk stops
             at anything else touching the same wire. *)
          let lead q =
            let acc = ref [] in
            let k = ref (i - 1) and stop = ref false in
            while !k >= 0 && not !stop do
              if touches (footprint arr.(!k)) q then
                if (not consumed.(!k)) && plain_1q_on q !k then
                  acc := !k :: !acc
                else stop := true;
              decr k
            done;
            !acc
          in
          let members = ref (lead a @ lead b @ [ i ]) in
          (let k = ref (i + 1) and stop = ref false in
           while !k < n && not !stop do
             let fp = footprint arr.(!k) in
             if touches fp a || touches fp b then
               if (not consumed.(!k)) && within !k then
                 members := !k :: !members
               else stop := true;
             incr k
           done);
          let idxs = List.sort_uniq compare !members in
          if List.length idxs >= 2 && List.length idxs <= 48 then begin
            let block = List.map (fun k -> arr.(k)) idxs in
            let to01 = Gate.map_qubits (fun q -> if q = a then 0 else 1) in
            let block01 = List.map to01 block in
            let m = mat2 block01 in
            let best =
              List.fold_left
                (fun best cand ->
                  match render_candidate config m cand with
                  | None -> best
                  | Some rendered -> (
                      match best with
                      | Some b when cost_2q b <= cost_2q rendered -> best
                      | _ -> Some rendered))
                None (block_candidates m)
            in
            match best with
            | Some rendered when cost_2q rendered < cost_2q block01 ->
                let from01 =
                  Gate.map_qubits (fun q -> if q = 0 then a else b)
                in
                (* The replacement only touches {a,b}, and the block walk
                   guarantees no skipped instruction between the first
                   two-qubit member and the last member touches either
                   wire, so inserting at [i] preserves ordering. *)
                repl.(i) <- Some (List.map from01 rendered);
                List.iter
                  (fun k ->
                    consumed.(k) <- true;
                    if k <> i then repl.(k) <- Some [])
                  idxs;
                d := { !d with d_blocks = !d.d_blocks + 1 }
            | _ -> ()
          end
      | _ -> ()
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    match repl.(i) with
    | None -> out := arr.(i) :: !out
    | Some gates -> out := gates @ !out
  done;
  (rebuild circuit !out, !d)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let pass_list config =
  [ ("peephole", peephole_pass config) ]
  @ (if emittable config (Gate.Rz 0.0) then [ ("rz-merge", rz_pass) ] else [])
  @ (match config.basis with
    | Some b -> [ ("euler", euler_pass b) ]
    | None -> [])
  @ if config.consolidate then [ ("2q-blocks", consolidate config) ] else []

let pipeline ?(config = logical_config) ?on_pass circuit =
  let passes = pass_list config in
  let rec loop c stats round =
    if round > config.max_rounds then (c, stats)
    else
      let c', stats', changed =
        List.fold_left
          (fun (c, st, changed) (name, f) ->
            let c', d = f c in
            let ch = delta_total d > 0 in
            (match on_pass with
            | Some cb when ch -> cb ~round ~pass:name ~before:c c'
            | _ -> ());
            (c', fold_delta st d, changed || ch))
          (c, stats, false) passes
      in
      if changed then loop c' { stats' with rounds = round } (round + 1)
      else (c', stats')
  in
  loop circuit zero_stats 1

let run circuit = pipeline ~config:logical_config circuit
let run_circuit circuit = fst (run circuit)

(* ------------------------------------------------------------------ *)
(* Legacy single-pass sweep, kept as the `Basic` baseline              *)

let shares_qubit a b = overlaps (footprint a) (footprint b)

let run_basic circuit =
  let sweep instrs =
    let arr = Array.of_list instrs in
    let n = Array.length arr in
    let removed = Array.make n false in
    let d = ref no_delta in
    Array.iteri
      (fun i instr ->
        if is_droppable instr then begin
          removed.(i) <- true;
          d := { !d with d_drops = !d.d_drops + 1 }
        end)
      arr;
    for i = 0 to n - 1 do
      if not removed.(i) then begin
        let rec successor j =
          if j >= n then None
          else if (not removed.(j)) && shares_qubit arr.(i) arr.(j) then Some j
          else successor (j + 1)
        in
        match successor (i + 1) with
        | None -> ()
        | Some j ->
            if cancels arr.(i) arr.(j) then begin
              removed.(i) <- true;
              removed.(j) <- true;
              d := { !d with d_pairs = !d.d_pairs + 1 }
            end
            else begin
              match merge arr.(i) arr.(j) with
              | Some combined ->
                  removed.(i) <- true;
                  if is_droppable combined then begin
                    removed.(j) <- true;
                    d := { !d with d_pairs = !d.d_pairs + 1 }
                  end
                  else begin
                    arr.(j) <- combined;
                    d := { !d with d_merges = !d.d_merges + 1 }
                  end
              | None -> ()
            end
      end
    done;
    let result = ref [] in
    for i = n - 1 downto 0 do
      if not removed.(i) then result := arr.(i) :: !result
    done;
    (!result, !d)
  in
  let rec fixpoint instrs acc budget =
    if budget = 0 then (instrs, acc)
    else
      let instrs', delta = sweep instrs in
      if delta_total delta = 0 then (instrs', acc)
      else fixpoint instrs' (fold_delta acc delta) (budget - 1)
  in
  let instrs, stats = fixpoint (Circuit.instructions circuit) zero_stats 64 in
  (rebuild circuit instrs, stats)
