module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Matrix = Qca_util.Matrix

let u1 g q = Gate.Unitary (g, [| q |])
let u2 g a b = Gate.Unitary (g, [| a; b |])

let half_pi = Float.pi /. 2.0

(* Each case is one rewrite step toward {x90, mx90, y90, my90, rz, cz}.
   Correctness of every identity is checked up to global phase by the unit
   tests (test_compiler.ml). *)
let expand u ops =
  match u, ops with
  | Gate.I, [| _ |] -> []
  | Gate.X, [| q |] -> [ u1 Gate.X90 q; u1 Gate.X90 q ]
  | Gate.Y, [| q |] -> [ u1 Gate.Y90 q; u1 Gate.Y90 q ]
  | Gate.Z, [| q |] -> [ u1 (Gate.Rz Float.pi) q ]
  | Gate.S, [| q |] -> [ u1 (Gate.Rz half_pi) q ]
  | Gate.Sdag, [| q |] -> [ u1 (Gate.Rz (-.half_pi)) q ]
  | Gate.T, [| q |] -> [ u1 (Gate.Rz (Float.pi /. 4.0)) q ]
  | Gate.Tdag, [| q |] -> [ u1 (Gate.Rz (-.Float.pi /. 4.0)) q ]
  | Gate.H, [| q |] -> [ u1 (Gate.Rz Float.pi) q; u1 Gate.Y90 q ]
  | Gate.Rx theta, [| q |] -> [ u1 Gate.Ym90 q; u1 (Gate.Rz theta) q; u1 Gate.Y90 q ]
  | Gate.Ry theta, [| q |] -> [ u1 Gate.X90 q; u1 (Gate.Rz theta) q; u1 Gate.Xm90 q ]
  | (Gate.X90 | Gate.Xm90 | Gate.Y90 | Gate.Ym90 | Gate.Rz _), [| _ |] ->
      [ Gate.Unitary (u, ops) ]
  | Gate.Cnot, [| c; t |] -> [ u1 Gate.H t; u2 Gate.Cz c t; u1 Gate.H t ]
  | Gate.Cz, [| _; _ |] -> [ Gate.Unitary (u, ops) ]
  | Gate.Swap, [| a; b |] -> [ u2 Gate.Cnot a b; u2 Gate.Cnot b a; u2 Gate.Cnot a b ]
  | Gate.Cphase phi, [| c; t |] ->
      [
        u1 (Gate.Rz (phi /. 2.0)) c;
        u1 (Gate.Rz (phi /. 2.0)) t;
        u2 Gate.Cnot c t;
        u1 (Gate.Rz (-.phi /. 2.0)) t;
        u2 Gate.Cnot c t;
      ]
  | Gate.Crk k, [| c; t |] ->
      let phi = 2.0 *. Float.pi /. float_of_int (1 lsl k) in
      [ u2 (Gate.Cphase phi) c t ]
  | Gate.Toffoli, [| a; b; t |] ->
      [
        u1 Gate.H t;
        u2 Gate.Cnot b t;
        u1 Gate.Tdag t;
        u2 Gate.Cnot a t;
        u1 Gate.T t;
        u2 Gate.Cnot b t;
        u1 Gate.Tdag t;
        u2 Gate.Cnot a t;
        u1 Gate.T b;
        u1 Gate.T t;
        u1 Gate.H t;
        u2 Gate.Cnot a b;
        u1 Gate.T a;
        u1 Gate.Tdag b;
        u2 Gate.Cnot a b;
      ]
  | _, _ ->
      Qca_util.Error.fail ~site:"Decompose.expand"
        ~context:
          [
            ("gate", Gate.name u);
            ("operands", string_of_int (Array.length ops));
          ]
        (Qca_util.Error.Invalid "operand count does not match gate arity")

let run platform circuit =
  let rec rewrite budget instr =
    (* Every expand case strictly reduces toward the primitive basis, so a
       blown budget means a cycle in the rewrite table — an internal bug,
       never a property of the input circuit. *)
    assert (budget > 0);
    match instr with
    | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ -> [ instr ]
    | Gate.Unitary (u, ops) ->
        if Platform.supports platform u then [ instr ]
        else
          let step = expand u ops in
          (* If expand is the identity rewrite, we cannot make progress. *)
          if step = [ instr ] then
            Qca_util.Error.fail ~site:"Decompose.run"
              (Qca_util.Error.Unsupported_gate
                 { platform = platform.Platform.name; gate = Gate.name u })
          else List.concat_map (rewrite (budget - 1)) step
    | Gate.Conditional (bit, u, ops) ->
        (* Decompose the body, then re-attach the classical condition to
           every resulting unitary (the bit is constant while they run). *)
        let body = rewrite (budget - 1) (Gate.Unitary (u, ops)) in
        List.map
          (fun i ->
            match i with
            | Gate.Unitary (u', ops') -> Gate.Conditional (bit, u', ops')
            | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ ->
                assert false)
          body
  in
  let instrs = List.concat_map (rewrite 16) (Circuit.instructions circuit) in
  Circuit.of_list ~name:(Circuit.name circuit) (Circuit.qubit_count circuit) instrs

let check_equivalent a b =
  Matrix.equal_up_to_phase ~eps:1e-9 (Circuit.unitary_matrix a) (Circuit.unitary_matrix b)
