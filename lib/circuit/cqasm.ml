type program = {
  qubit_count : int;
  error_model : (string * float) option;
  subcircuits : (string * int * Circuit.t) list;
}

(* All parse failures carry the 1-based source line and the offending token
   through [Qca_util.Error.Syntax] so callers (CLI, checker) can point at
   the exact source location. *)
let syntax_error ?(token = "") line reason =
  Qca_util.Error.fail ~site:"Cqasm.parse"
    (Qca_util.Error.Syntax { line; token; reason })

let emit_instruction buffer instr =
  Buffer.add_string buffer "  ";
  Buffer.add_string buffer (Gate.to_string instr);
  Buffer.add_char buffer '\n'

let emit program =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "version 1.0\n";
  Buffer.add_string buffer (Printf.sprintf "qubits %d\n" program.qubit_count);
  (match program.error_model with
  | Some (model, rate) ->
      Buffer.add_string buffer (Printf.sprintf "error_model %s, %g\n" model rate)
  | None -> ());
  List.iter
    (fun (name, iterations, circuit) ->
      if iterations = 1 then Buffer.add_string buffer (Printf.sprintf "\n.%s\n" name)
      else Buffer.add_string buffer (Printf.sprintf "\n.%s(%d)\n" name iterations);
      List.iter (emit_instruction buffer) (Circuit.instructions circuit))
    program.subcircuits;
  Buffer.contents buffer

let of_circuit circuit =
  {
    qubit_count = Circuit.qubit_count circuit;
    error_model = None;
    subcircuits = [ (Circuit.name circuit, 1, circuit) ];
  }

let emit_circuit circuit = emit (of_circuit circuit)

let flatten program =
  List.fold_left
    (fun acc (_, iterations, circuit) -> Circuit.append acc (Circuit.repeat iterations circuit))
    (Circuit.create program.qubit_count)
    program.subcircuits

(* ------------------------------------------------------------------ *)
(* Parser *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokenize line =
  line
  |> String.map (fun c -> if c = ',' then ' ' else c)
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let parse_qubit lineno token =
  let fail () =
    syntax_error ~token lineno
      (Printf.sprintf "expected qubit operand, got '%s'" token)
  in
  let len = String.length token in
  if len >= 4 && String.sub token 0 2 = "q[" && token.[len - 1] = ']' then
    match int_of_string_opt (String.sub token 2 (len - 3)) with
    | Some q -> q
    | None -> fail ()
  else fail ()

let parse_float lineno token =
  match float_of_string_opt token with
  | Some f -> f
  | None ->
      syntax_error ~token lineno (Printf.sprintf "expected angle, got '%s'" token)

let parse_int lineno token =
  match int_of_string_opt token with
  | Some k -> k
  | None ->
      syntax_error ~token lineno (Printf.sprintf "expected integer, got '%s'" token)

let parse_bit lineno token =
  let fail () =
    syntax_error ~token lineno
      (Printf.sprintf "expected classical bit operand, got '%s'" token)
  in
  let len = String.length token in
  if len >= 4 && String.sub token 0 2 = "b[" && token.[len - 1] = ']' then
    match int_of_string_opt (String.sub token 2 (len - 3)) with
    | Some b -> b
    | None -> fail ()
  else fail ()

let rec parse_instruction lineno qubit_count tokens =
  let q = parse_qubit lineno in
  match tokens with
  | [] -> None
  | [ "display" ] -> None
  | [ "measure_all" ] ->
      Some (List.init qubit_count (fun i -> Gate.Measure i))
  | mnemonic :: bit_token :: rest
    when String.length mnemonic > 2 && String.sub mnemonic 0 2 = "c-" -> begin
      (* Binary-controlled gate: c-<gate> b[k], <operands...> *)
      let bit = parse_bit lineno bit_token in
      let inner = String.sub mnemonic 2 (String.length mnemonic - 2) in
      match parse_instruction lineno qubit_count (inner :: rest) with
      | Some [ Gate.Unitary (u, ops) ] -> Some [ Gate.Conditional (bit, u, ops) ]
      | Some _ | None ->
          syntax_error ~token:mnemonic lineno
            "c- prefix requires a single unitary gate"
    end
  | mnemonic :: operands -> begin
      let single u =
        match operands with
        | [ t ] -> Some [ Gate.Unitary (u, [| q t |]) ]
        | _ ->
            syntax_error ~token:mnemonic lineno (mnemonic ^ ": expected one operand")
      in
      let double u =
        match operands with
        | [ t1; t2 ] -> Some [ Gate.Unitary (u, [| q t1; q t2 |]) ]
        | _ ->
            syntax_error ~token:mnemonic lineno (mnemonic ^ ": expected two operands")
      in
      match mnemonic with
      | "i" -> single Gate.I
      | "x" -> single Gate.X
      | "y" -> single Gate.Y
      | "z" -> single Gate.Z
      | "h" -> single Gate.H
      | "s" -> single Gate.S
      | "sdag" -> single Gate.Sdag
      | "t" -> single Gate.T
      | "tdag" -> single Gate.Tdag
      | "x90" -> single Gate.X90
      | "mx90" -> single Gate.Xm90
      | "y90" -> single Gate.Y90
      | "my90" -> single Gate.Ym90
      | "rx" | "ry" | "rz" -> begin
          match operands with
          | [ t; angle ] ->
              let theta = parse_float lineno angle in
              let u =
                match mnemonic with
                | "rx" -> Gate.Rx theta
                | "ry" -> Gate.Ry theta
                | _ -> Gate.Rz theta
              in
              Some [ Gate.Unitary (u, [| q t |]) ]
          | _ ->
              syntax_error ~token:mnemonic lineno
                (mnemonic ^ ": expected qubit and angle")
        end
      | "cnot" -> double Gate.Cnot
      | "cz" -> double Gate.Cz
      | "swap" -> double Gate.Swap
      | "cphase" -> begin
          match operands with
          | [ t1; t2; angle ] ->
              Some
                [ Gate.Unitary (Gate.Cphase (parse_float lineno angle), [| q t1; q t2 |]) ]
          | _ ->
              syntax_error ~token:"cphase" lineno "cphase: expected two qubits and angle"
        end
      | "cr" -> begin
          match operands with
          | [ t1; t2; k ] ->
              Some [ Gate.Unitary (Gate.Crk (parse_int lineno k), [| q t1; q t2 |]) ]
          | _ -> syntax_error ~token:"cr" lineno "cr: expected two qubits and integer"
        end
      | "toffoli" -> begin
          match operands with
          | [ t1; t2; t3 ] ->
              Some [ Gate.Unitary (Gate.Toffoli, [| q t1; q t2; q t3 |]) ]
          | _ -> syntax_error ~token:"toffoli" lineno "toffoli: expected three operands"
        end
      | "prep_z" -> begin
          match operands with
          | [ t ] -> Some [ Gate.Prep (q t) ]
          | _ -> syntax_error ~token:"prep_z" lineno "prep_z: expected one operand"
        end
      | "measure" -> begin
          match operands with
          | [ t ] -> Some [ Gate.Measure (q t) ]
          | _ -> syntax_error ~token:"measure" lineno "measure: expected one operand"
        end
      | "barrier" -> Some [ Gate.Barrier (Array.of_list (List.map q operands)) ]
      | other ->
          syntax_error ~token:other lineno
            (Printf.sprintf "unknown mnemonic '%s'" other)
    end

let parse_subcircuit_header lineno line =
  (* ".name" or ".name(k)" *)
  let body = String.sub line 1 (String.length line - 1) in
  match String.index_opt body '(' with
  | None -> (body, 1)
  | Some i ->
      if String.length body < i + 2 || body.[String.length body - 1] <> ')' then
        syntax_error ~token:body lineno "malformed subcircuit header"
      else
        let name = String.sub body 0 i in
        let count_str = String.sub body (i + 1) (String.length body - i - 2) in
        (name, parse_int lineno count_str)

let parse source =
  let lines = String.split_on_char '\n' source in
  let qubit_count = ref 0 in
  let seen_version = ref false in
  let error_model = ref None in
  let subcircuits = ref [] in
  (* Current subcircuit accumulation: (name, iterations, reversed instrs). *)
  let current = ref ("default", 1, []) in
  let flush () =
    let name, iterations, rev_instrs = !current in
    if rev_instrs <> [] then begin
      let circuit = Circuit.of_list ~name !qubit_count (List.rev rev_instrs) in
      subcircuits := (name, iterations, circuit) :: !subcircuits
    end
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then
        if String.length line > 1 && line.[0] = '.' then begin
          flush ();
          let name, iterations = parse_subcircuit_header lineno line in
          current := (name, iterations, [])
        end
        else
          match tokenize line with
          | "version" :: _ -> seen_version := true
          | [ "qubits"; n ] -> qubit_count := parse_int lineno n
          | [ "error_model"; model; rate ] ->
              error_model := Some (model, parse_float lineno rate)
          | tokens -> begin
              if !qubit_count = 0 then
                syntax_error
                  ~token:(match tokens with t :: _ -> t | [] -> "")
                  lineno "instruction before 'qubits' declaration";
              match parse_instruction lineno !qubit_count tokens with
              | None -> ()
              | Some instrs ->
                  (* Validate operands here so range errors point at the
                     offending source line, not the end-of-parse flush. *)
                  List.iter
                    (fun instr ->
                      try Circuit.validate_instruction !qubit_count instr
                      with Invalid_argument reason ->
                        syntax_error
                          ~token:(match tokens with t :: _ -> t | [] -> "")
                          lineno reason)
                    instrs;
                  let name, iterations, rev_instrs = !current in
                  current := (name, iterations, List.rev_append instrs rev_instrs)
            end)
    lines;
  flush ();
  if not !seen_version then syntax_error 1 "missing 'version' header";
  if !qubit_count <= 0 then syntax_error 1 "missing or invalid 'qubits' declaration";
  {
    qubit_count = !qubit_count;
    error_model = !error_model;
    subcircuits = List.rev !subcircuits;
  }

let parse_circuit source = flatten (parse source)

let roundtrip_equal circuit =
  let parsed = parse_circuit (emit_circuit circuit) in
  Circuit.equal circuit parsed
