(** cQASM 1.0 (common QASM) emitter and parser.

    cQASM is the paper's common quantum assembly language: the contract
    between the OpenQL compiler and the QX simulator. This module supports a
    pragmatic subset: the version header, [qubits n], named subcircuits with
    repetition counts ([.body(3)]), the shared gate set of {!Gate.unitary},
    [prep_z], [measure], [measure_all], [display] and [#] comments. *)

type program = {
  qubit_count : int;
  error_model : (string * float) option;
      (** QX-style error-model directive, e.g.
          [error_model depolarizing_channel, 0.001]. *)
  subcircuits : (string * int * Circuit.t) list;
      (** Ordered (name, iteration count, body) triples. *)
}

val emit_circuit : Circuit.t -> string
(** Render one circuit as a complete cQASM file with a single default
    subcircuit. *)

val emit : program -> string
(** Render a program with its subcircuit structure. *)

val flatten : program -> Circuit.t
(** Expand subcircuit repetitions into one flat circuit. *)

val of_circuit : Circuit.t -> program

val parse : string -> program
(** Parse cQASM source. Malformed input raises
    {!Qca_util.Error.Error} with a {!Qca_util.Error.Syntax} kind carrying
    the 1-based source line and the offending token (site
    ["Cqasm.parse"]). Out-of-range or malformed operands are reported the
    same way, at the line that used them. *)

val parse_circuit : string -> Circuit.t
(** [flatten (parse source)]. *)

val roundtrip_equal : Circuit.t -> bool
(** Debug helper: emit then parse and compare (used by tests). *)
