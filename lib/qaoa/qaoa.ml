module Ising = Qca_anneal.Ising
module Qubo = Qca_anneal.Qubo
module State = Qca_qx.State
module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Rng = Qca_util.Rng
module Optimize = Qca_util.Optimize

type params = { gammas : float array; betas : float array }

let layers p =
  assert (Array.length p.gammas = Array.length p.betas);
  Array.length p.gammas

let spin_of_bit basis q = if basis land (1 lsl q) <> 0 then 1 else -1

let spin_energy_of_basis model basis =
  let acc = ref 0.0 in
  Array.iteri
    (fun i hi -> acc := !acc +. (hi *. float_of_int (spin_of_bit basis i)))
    model.Ising.h;
  List.iter
    (fun (i, j, w) ->
      acc := !acc +. (w *. float_of_int (spin_of_bit basis i * spin_of_bit basis j)))
    model.Ising.couplings;
  !acc

let energy_table model = Array.init (1 lsl model.Ising.n) (spin_energy_of_basis model)

let evolve_with energies model p =
  let n = model.Ising.n in
  let state = State.create n in
  for q = 0 to n - 1 do
    State.apply state Gate.H [| q |]
  done;
  for layer = 0 to layers p - 1 do
    let gamma = p.gammas.(layer) and beta = p.betas.(layer) in
    State.apply_diagonal_phase state (fun k -> -.gamma *. energies.(k));
    for q = 0 to n - 1 do
      State.apply state (Gate.Rx (2.0 *. beta)) [| q |]
    done
  done;
  state

let evolve model p = evolve_with (energy_table model) model p

let expectation_with energies model p =
  let state = evolve_with energies model p in
  State.expectation_diag state (fun k -> energies.(k))

let expectation model p = expectation_with (energy_table model) model p

(* Bit b encodes spin s = 2b - 1, so Pauli Z (eigenvalue +1 on |0>) equals
   -s. The energy is E = -sum h_i Z_i + sum w_ij Z_i Z_j, hence fields need
   exp(+i gamma h Z) = Rz(-2 gamma h) and couplings
   exp(-i gamma w ZZ) = CNOT . Rz(2 gamma w) . CNOT. *)
let cost_circuit model gamma =
  let n = model.Ising.n in
  let c = ref (Circuit.create ~name:"qaoa-cost" n) in
  Array.iteri
    (fun i hi ->
      if hi <> 0.0 then
        c := Circuit.add !c (Gate.Unitary (Gate.Rz (-2.0 *. gamma *. hi), [| i |])))
    model.Ising.h;
  List.iter
    (fun (i, j, w) ->
      if w <> 0.0 then begin
        c := Circuit.add !c (Gate.Unitary (Gate.Cnot, [| i; j |]));
        c := Circuit.add !c (Gate.Unitary (Gate.Rz (2.0 *. gamma *. w), [| j |]));
        c := Circuit.add !c (Gate.Unitary (Gate.Cnot, [| i; j |]))
      end)
    model.Ising.couplings;
  !c

let mixer_circuit n beta =
  Circuit.of_list ~name:"qaoa-mixer" n
    (List.init n (fun q -> Gate.Unitary (Gate.Rx (2.0 *. beta), [| q |])))

let full_circuit model p =
  let n = model.Ising.n in
  let walls = Circuit.of_list ~name:"qaoa" n (List.init n (fun q -> Gate.Unitary (Gate.H, [| q |]))) in
  let rec add_layers c layer =
    if layer = layers p then c
    else
      let c = Circuit.append c (cost_circuit model p.gammas.(layer)) in
      let c = Circuit.append c (mixer_circuit n p.betas.(layer)) in
      add_layers c (layer + 1)
  in
  add_layers walls 0

type result = {
  params : params;
  expectation_value : float;
  best_bits : int array;
  best_energy : float;
  evaluations : int;
}

let params_of_vector v =
  let p = Array.length v / 2 in
  { gammas = Array.sub v 0 p; betas = Array.sub v p p }

let optimize ?(layers = 1) ?(restarts = 3) ?(shots = 256) ~rng model =
  assert (layers >= 1 && restarts >= 1);
  let energies = energy_table model in
  let evaluations = ref 0 in
  let objective v =
    incr evaluations;
    expectation_with energies model (params_of_vector v)
  in
  let best_v = ref None in
  for _ = 1 to restarts do
    let v0 =
      Array.init (2 * layers) (fun i ->
          if i < layers then Rng.float rng Float.pi else Rng.float rng (Float.pi /. 2.0))
    in
    let v, fv = Optimize.nelder_mead ~max_iter:400 ~tolerance:1e-7 objective v0 in
    match !best_v with
    | Some (_, f) when f <= fv -> ()
    | Some _ | None -> best_v := Some (v, fv)
  done;
  let v, fv =
    match !best_v with Some r -> r | None -> assert false
  in
  let p = params_of_vector v in
  let state = evolve_with energies model p in
  let n = model.Ising.n in
  let best_bits = ref (Array.make n 0) and best_energy = ref infinity in
  (* One cumulative build, then O(n) binary-search draws: repeated
     sample_index calls would rebuild the distribution every shot. *)
  let sampler = State.sampler state in
  for _ = 1 to shots do
    let basis = State.sampler_draw sampler rng in
    let e = spin_energy_of_basis model basis in
    if e < !best_energy then begin
      best_energy := e;
      best_bits := Array.init n (fun q -> (basis lsr q) land 1)
    end
  done;
  {
    params = p;
    expectation_value = fv;
    best_bits = !best_bits;
    best_energy = !best_energy;
    evaluations = !evaluations;
  }

let solve_qubo ?layers ?restarts ?shots ~rng q =
  let model, offset = Ising.of_qubo q in
  let result = optimize ?layers ?restarts ?shots ~rng model in
  (result.best_bits, result.best_energy +. offset)
