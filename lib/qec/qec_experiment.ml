module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Rng = Qca_util.Rng
module Bits = Qca_util.Bits

let total_qubits code = code.Code.n + Code.ancilla_count code

(* Measure stabilizer i via its ancilla, returning the outcome bit and
   leaving the ancilla collapsed (caller re-preps). *)
let measure_stabilizer code tableau rng i =
  let n = code.Code.n in
  let ancilla = n + i in
  let stab = code.Code.stabilizers.(i) in
  let support = Pauli.support stab in
  (* reset ancilla *)
  let m = Tableau.measure tableau rng ancilla in
  if m = 1 then Tableau.x tableau ancilla;
  let is_x = stab.Pauli.x <> 0 in
  if is_x then begin
    Tableau.h tableau ancilla;
    List.iter (fun q -> Tableau.cnot tableau ancilla q) support;
    Tableau.h tableau ancilla
  end
  else List.iter (fun q -> Tableau.cnot tableau q ancilla) support;
  Tableau.measure tableau rng ancilla

let prepare_logical_zero code rng =
  let tableau = Tableau.create (total_qubits code) in
  (* Measuring each stabilizer projects into a joint eigenspace; a -1
     outcome is repaired with a frame-fix operator that anticommutes with
     that stabilizer and commutes with the already-fixed ones. Rather than
     search for one, simply repeat the projection: starting from |0...0>
     every Z-type stabilizer is already +1, and for X-type stabilizers a -1
     outcome is fixed by any Z on one support qubit (which may disturb later
     X stabilizers, so sweep until clean, which terminates for CSS codes). *)
  let m = Array.length code.Code.stabilizers in
  let rec sweep budget =
    (* User-definable codes can be non-CSS, where the single-qubit frame fix
       is not guaranteed to settle — so this is a structured error, not an
       assertion. *)
    if budget = 0 then
      Qca_util.Error.fail ~site:"Qec_experiment.prepare_logical_zero"
        ~context:[ ("code", code.Code.name) ]
        (Qca_util.Error.Non_convergence "stabilizer projection did not converge");
    let dirty = ref false in
    for i = 0 to m - 1 do
      let outcome = measure_stabilizer code tableau rng i in
      if outcome = 1 then begin
        dirty := true;
        let stab = code.Code.stabilizers.(i) in
        (* Fix with a single-qubit operator anticommuting with this stabilizer. *)
        match Pauli.support stab with
        | [] -> assert false
        | q :: _ -> if stab.Pauli.x <> 0 then Tableau.z tableau q else Tableau.x tableau q
      end
    done;
    if !dirty then sweep (budget - 1)
  in
  sweep 32;
  tableau

let extract_syndrome code tableau rng =
  let m = Array.length code.Code.stabilizers in
  let syndrome = ref 0 in
  for i = 0 to m - 1 do
    if measure_stabilizer code tableau rng i = 1 then syndrome := Bits.set !syndrome i
  done;
  !syndrome

let circuit_level_syndrome_matches code error rng =
  let tableau = prepare_logical_zero code rng in
  Tableau.apply_pauli tableau error;
  let measured = extract_syndrome code tableau rng in
  measured = Code.syndrome code error

type overhead = {
  qec_ops_per_round : int;
  logical_op_cost : int;
  rounds_per_logical_op : int;
  qec_fraction : float;
  physical_qubits : int;
}

let overhead_of ?(rounds_per_logical_op = 1) code =
  let round_circuit = Code.syndrome_circuit code in
  let ops circuit =
    List.length
      (List.filter
         (fun instr ->
           match instr with
           | Gate.Unitary _ | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _ -> true
           | Gate.Barrier _ -> false)
         (Circuit.instructions circuit))
  in
  let qec_ops_per_round = ops round_circuit in
  (* A transversal logical operation costs one physical op per data qubit. *)
  let logical_op_cost = code.Code.n in
  let qec_total = qec_ops_per_round * rounds_per_logical_op in
  {
    qec_ops_per_round;
    logical_op_cost;
    rounds_per_logical_op;
    qec_fraction = float_of_int qec_total /. float_of_int (qec_total + logical_op_cost);
    physical_qubits = total_qubits code;
  }
