module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Bits = Qca_util.Bits

type t = {
  name : string;
  n : int;
  stabilizers : Pauli.t array;
  logical_x : Pauli.t;
  logical_z : Pauli.t;
  distance : int;
}

let syndrome code error =
  let s = ref 0 in
  Array.iteri
    (fun i stab -> if not (Pauli.commutes stab error) then s := Bits.set !s i)
    code.stabilizers;
  !s

let is_valid code =
  let ok = ref true in
  let m = Array.length code.stabilizers in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if not (Pauli.commutes code.stabilizers.(i) code.stabilizers.(j)) then ok := false
    done;
    if not (Pauli.commutes code.stabilizers.(i) code.logical_x) then ok := false;
    if not (Pauli.commutes code.stabilizers.(i) code.logical_z) then ok := false
  done;
  if Pauli.commutes code.logical_x code.logical_z then ok := false;
  !ok

let in_stabilizer_group code op =
  let m = Array.length code.stabilizers in
  assert (m <= 20);
  let rec scan subset =
    if subset = 1 lsl m then false
    else begin
      let product = ref Pauli.identity in
      for i = 0 to m - 1 do
        if Bits.test subset i then product := Pauli.mul !product code.stabilizers.(i)
      done;
      if Pauli.equal !product op then true else scan (subset + 1)
    end
  in
  scan 0

let logical_effect code residual =
  let flips_z = not (Pauli.commutes residual code.logical_z) in
  let flips_x = not (Pauli.commutes residual code.logical_x) in
  match flips_z, flips_x with
  | false, false -> `None
  | true, false -> `X (* acts like logical X: flips the Z eigenvalue *)
  | false, true -> `Z
  | true, true -> `Y

let bit_flip_repetition d =
  if d < 3 || d mod 2 = 0 then invalid_arg "Code.bit_flip_repetition: odd d >= 3";
  let stabilizers =
    Array.init (d - 1) (fun i ->
        Pauli.mul (Pauli.single i 'Z') (Pauli.single (i + 1) 'Z'))
  in
  let all_x = List.fold_left (fun acc q -> Pauli.mul acc (Pauli.single q 'X')) Pauli.identity (List.init d Fun.id) in
  {
    name = Printf.sprintf "repetition-%d" d;
    n = d;
    stabilizers;
    logical_x = all_x;
    logical_z = Pauli.single 0 'Z';
    distance = d;
  }

let phase_flip_repetition d =
  if d < 3 || d mod 2 = 0 then invalid_arg "Code.phase_flip_repetition: odd d >= 3";
  let stabilizers =
    Array.init (d - 1) (fun i ->
        Pauli.mul (Pauli.single i 'X') (Pauli.single (i + 1) 'X'))
  in
  let all_z = List.fold_left (fun acc q -> Pauli.mul acc (Pauli.single q 'Z')) Pauli.identity (List.init d Fun.id) in
  {
    name = Printf.sprintf "phase-repetition-%d" d;
    n = d;
    stabilizers;
    logical_x = Pauli.single 0 'X';
    logical_z = all_z;
    distance = d;
  }

(* Rotated distance-3 surface code. Data layout:
     0 1 2
     3 4 5
     6 7 8
   Z faces {0,1,3,4} {4,5,7,8} {2,5} {3,6}; X faces {1,2,4,5} {3,4,6,7}
   {0,1} {7,8}. Validity (commutation, logical anticommutation) is enforced
   by the test suite via [is_valid]. *)
let surface_17 =
  let zs qubits =
    List.fold_left (fun acc q -> Pauli.mul acc (Pauli.single q 'Z')) Pauli.identity qubits
  in
  let xs qubits =
    List.fold_left (fun acc q -> Pauli.mul acc (Pauli.single q 'X')) Pauli.identity qubits
  in
  {
    name = "surface-17";
    n = 9;
    stabilizers =
      [|
        zs [ 0; 1; 3; 4 ];
        zs [ 4; 5; 7; 8 ];
        zs [ 2; 5 ];
        zs [ 3; 6 ];
        xs [ 1; 2; 4; 5 ];
        xs [ 3; 4; 6; 7 ];
        xs [ 0; 1 ];
        xs [ 7; 8 ];
      |];
    logical_z = zs [ 0; 1; 2 ];
    logical_x = xs [ 0; 3; 6 ];
    distance = 3;
  }

(* Rotated surface code of odd distance d: data qubits on a d x d grid,
   interior faces alternating Z/X by (row + col) parity, boundary half-faces
   on top/bottom (X-type) and left/right (Z-type). Logical Z runs along the
   top row, logical X down the left column. *)
let rotated_surface d =
  if d < 3 || d mod 2 = 0 then invalid_arg "Code.rotated_surface: odd d >= 3";
  let q r c = (r * d) + c in
  let zs qubits =
    List.fold_left (fun acc i -> Pauli.mul acc (Pauli.single i 'Z')) Pauli.identity qubits
  in
  let xs qubits =
    List.fold_left (fun acc i -> Pauli.mul acc (Pauli.single i 'X')) Pauli.identity qubits
  in
  let stabilizers = ref [] in
  (* interior faces *)
  for r = 0 to d - 2 do
    for c = 0 to d - 2 do
      let corners = [ q r c; q r (c + 1); q (r + 1) c; q (r + 1) (c + 1) ] in
      let stab = if (r + c) mod 2 = 0 then zs corners else xs corners in
      stabilizers := stab :: !stabilizers
    done
  done;
  (* top and bottom X half-faces *)
  for c = 0 to d - 2 do
    if (-1 + c) mod 2 <> 0 then
      stabilizers := xs [ q 0 c; q 0 (c + 1) ] :: !stabilizers;
    if (d - 1 + c) mod 2 = 1 then
      stabilizers := xs [ q (d - 1) c; q (d - 1) (c + 1) ] :: !stabilizers
  done;
  (* left and right Z half-faces *)
  for r = 0 to d - 2 do
    if (r - 1) mod 2 = 0 then stabilizers := zs [ q r 0; q (r + 1) 0 ] :: !stabilizers;
    if (r + d - 1) mod 2 = 0 then
      stabilizers := zs [ q r (d - 1); q (r + 1) (d - 1) ] :: !stabilizers
  done;
  {
    name = Printf.sprintf "surface-%d" d;
    n = d * d;
    stabilizers = Array.of_list (List.rev !stabilizers);
    logical_z = zs (List.init d (fun c -> q 0 c));
    logical_x = xs (List.init d (fun r -> q r 0));
    distance = d;
  }

(* Steane [[7,1,3]]: stabilizers from the [7,4] Hamming parity checks, one
   X-type and one Z-type copy of each. *)
let steane =
  let checks = [ [ 3; 4; 5; 6 ]; [ 1; 2; 5; 6 ]; [ 0; 2; 4; 6 ] ] in
  let build letter positions =
    List.fold_left
      (fun acc q -> Pauli.mul acc (Pauli.single q letter))
      Pauli.identity positions
  in
  let all = List.init 7 Fun.id in
  {
    name = "steane-7";
    n = 7;
    stabilizers =
      Array.of_list
        (List.map (build 'X') checks @ List.map (build 'Z') checks);
    logical_x = build 'X' all;
    logical_z = build 'Z' all;
    distance = 3;
  }

let ancilla_count code = Array.length code.stabilizers
let physical_qubits code = code.n + ancilla_count code

(* One syndrome round: ancilla i measures stabilizer i.
   Z-type stabilizer: ancilla in |0>, CNOT(data -> ancilla) per qubit.
   X-type: ancilla in |+>, CNOT(ancilla -> data), H, measure. *)
let syndrome_circuit code =
  let n = code.n in
  let total = n + ancilla_count code in
  let instrs = ref [] in
  let emit i = instrs := i :: !instrs in
  Array.iteri
    (fun i stab ->
      let ancilla = n + i in
      emit (Gate.Prep ancilla);
      let support = Pauli.support stab in
      let is_x = stab.Pauli.x <> 0 in
      if is_x then begin
        emit (Gate.Unitary (Gate.H, [| ancilla |]));
        List.iter (fun q -> emit (Gate.Unitary (Gate.Cnot, [| ancilla; q |]))) support;
        emit (Gate.Unitary (Gate.H, [| ancilla |]))
      end
      else
        List.iter (fun q -> emit (Gate.Unitary (Gate.Cnot, [| q; ancilla |]))) support;
      emit (Gate.Measure ancilla))
    code.stabilizers;
  Circuit.of_list ~name:(code.name ^ "-syndrome") total (List.rev !instrs)
