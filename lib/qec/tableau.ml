module Rng = Qca_util.Rng
module Gate = Qca_circuit.Gate

(* Aaronson-Gottesman tableau: rows 0..n-1 are destabilizers, n..2n-1 are
   stabilizers, plus one scratch row 2n used during measurement. Each row is
   a Pauli with sign bit r (0 = +, 1 = -). Bits are stored in int arrays
   indexed [row].(qubit). *)
type t = {
  n : int;
  xs : int array array;  (* xs.(row).(q) in {0,1} *)
  zs : int array array;
  r : int array;  (* sign bit per row *)
}

let create n =
  assert (n >= 1 && n <= 4096);
  let rows = (2 * n) + 1 in
  let xs = Array.make_matrix rows n 0 and zs = Array.make_matrix rows n 0 in
  for i = 0 to n - 1 do
    xs.(i).(i) <- 1;
    (* destabilizer X_i *)
    zs.(n + i).(i) <- 1 (* stabilizer Z_i *)
  done;
  { n; xs; zs; r = Array.make rows 0 }

let qubit_count t = t.n

(* Back to |0...0> without reallocating: the bulk-shot primitive. The
   engine's Clifford plan runs thousands of shots on one tableau per domain,
   so re-zeroing in place keeps the per-shot cost at O(n^2) writes with no
   allocation. *)
let reset t =
  let rows = (2 * t.n) + 1 in
  for i = 0 to rows - 1 do
    Array.fill t.xs.(i) 0 t.n 0;
    Array.fill t.zs.(i) 0 t.n 0;
    t.r.(i) <- 0
  done;
  for i = 0 to t.n - 1 do
    t.xs.(i).(i) <- 1;
    t.zs.(t.n + i).(i) <- 1
  done

let copy t =
  {
    n = t.n;
    xs = Array.map Array.copy t.xs;
    zs = Array.map Array.copy t.zs;
    r = Array.copy t.r;
  }

let h t q =
  for i = 0 to (2 * t.n) - 1 do
    let x = t.xs.(i).(q) and z = t.zs.(i).(q) in
    t.r.(i) <- t.r.(i) lxor (x land z);
    t.xs.(i).(q) <- z;
    t.zs.(i).(q) <- x
  done

let s t q =
  for i = 0 to (2 * t.n) - 1 do
    let x = t.xs.(i).(q) and z = t.zs.(i).(q) in
    t.r.(i) <- t.r.(i) lxor (x land z);
    t.zs.(i).(q) <- z lxor x
  done

let cnot t control target =
  for i = 0 to (2 * t.n) - 1 do
    let xc = t.xs.(i).(control) and zc = t.zs.(i).(control) in
    let xt = t.xs.(i).(target) and zt = t.zs.(i).(target) in
    t.r.(i) <- t.r.(i) lxor (xc land zt land (xt lxor zc lxor 1));
    t.xs.(i).(target) <- xt lxor xc;
    t.zs.(i).(control) <- zc lxor zt
  done

let z t q =
  (* Z = S^2 *)
  s t q;
  s t q

let x t q =
  h t q;
  z t q;
  h t q

let y t q =
  (* Y = iXZ; phase is global, so X then Z suffices. *)
  z t q;
  x t q

let sdag t q =
  s t q;
  z t q

let cz t a b =
  h t b;
  cnot t a b;
  h t b

let swap t a b =
  cnot t a b;
  cnot t b a;
  cnot t a b

let apply_pauli t (p : Pauli.t) =
  for q = 0 to t.n - 1 do
    let has_x = p.Pauli.x land (1 lsl q) <> 0 and has_z = p.Pauli.z land (1 lsl q) <> 0 in
    if has_x && has_z then y t q
    else if has_x then x t q
    else if has_z then z t q
  done

(* Total classification of the shared gate set: the planner must decide
   Clifford-ness without exception probing, and a new [Gate.unitary]
   constructor must force a decision here. *)
let supports = function
  | Gate.I | Gate.X | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdag | Gate.X90
  | Gate.Xm90 | Gate.Y90 | Gate.Ym90 | Gate.Cnot | Gate.Cz | Gate.Swap ->
      true
  | Gate.T | Gate.Tdag | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.Cphase _
  | Gate.Crk _ | Gate.Toffoli ->
      false

let operand_string ops =
  String.concat "," (Array.to_list (Array.map string_of_int ops))

let apply_gate t u ops =
  match u, ops with
  | Gate.I, _ -> ()
  | Gate.X, [| q |] -> x t q
  | Gate.Y, [| q |] -> y t q
  | Gate.Z, [| q |] -> z t q
  | Gate.H, [| q |] -> h t q
  | Gate.S, [| q |] -> s t q
  | Gate.Sdag, [| q |] -> sdag t q
  | Gate.X90, [| q |] ->
      (* X90 = H S H up to phase *)
      h t q;
      s t q;
      h t q
  | Gate.Xm90, [| q |] ->
      h t q;
      sdag t q;
      h t q
  | Gate.Y90, [| q |] ->
      (* Y90 = Z H up to phase: check: H Z |psi>? Y90 = H X = ... use S H S-ish.
         Ry(pi/2) maps Z->X, X->-Z. H maps Z<->X. Need sign: use S H Sdag? That maps
         Z -> S H Sdag Z Sdag H S. Simpler: Y90 = Sdag H S? Verified in tests. *)
      z t q;
      h t q
  | Gate.Ym90, [| q |] ->
      h t q;
      z t q
  | Gate.Cnot, [| c; tg |] -> cnot t c tg
  | Gate.Cz, [| a; b |] -> cz t a b
  | Gate.Swap, [| a; b |] -> swap t a b
  | (Gate.T | Gate.Tdag | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.Cphase _ | Gate.Crk _ | Gate.Toffoli), _ ->
      invalid_arg
        (Printf.sprintf "Tableau.apply_gate: non-Clifford gate %s on qubits [%s]"
           (Gate.name u) (operand_string ops))
  | (Gate.X | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdag | Gate.X90 | Gate.Xm90
    | Gate.Y90 | Gate.Ym90 | Gate.Cnot | Gate.Cz | Gate.Swap), _ ->
      invalid_arg
        (Printf.sprintf
           "Tableau.apply_gate: gate %s expects %d operand(s), got [%s]"
           (Gate.name u) (Gate.arity u) (operand_string ops))

(* Multiply row h by row i (h <- h * i), tracking the sign via the g
   function of Aaronson-Gottesman. *)
let rowsum t target source =
  let g x1 z1 x2 z2 =
    (* exponent of i contributed when multiplying single-qubit Paulis *)
    if x1 = 0 && z1 = 0 then 0
    else if x1 = 1 && z1 = 1 then z2 - x2
    else if x1 = 1 && z1 = 0 then z2 * ((2 * x2) - 1)
    else x2 * (1 - (2 * z2))
  in
  let phase = ref ((2 * t.r.(target)) + (2 * t.r.(source))) in
  for q = 0 to t.n - 1 do
    phase := !phase + g t.xs.(source).(q) t.zs.(source).(q) t.xs.(target).(q) t.zs.(target).(q);
    t.xs.(target).(q) <- t.xs.(target).(q) lxor t.xs.(source).(q);
    t.zs.(target).(q) <- t.zs.(target).(q) lxor t.zs.(source).(q)
  done;
  let m = ((!phase mod 4) + 4) mod 4 in
  (* Stabilizer (and scratch) rows are Hermitian Paulis, so their products
     carry i^0 or i^2 only. Destabilizer targets can legitimately land on an
     odd power of i — e.g. multiplying a destabilizer by its own paired
     stabilizer during measurement — and their signs are irrelevant to every
     outcome (Aaronson-Gottesman section III), so they are not asserted. *)
  if target >= t.n then assert (m = 0 || m = 2);
  t.r.(target) <- m / 2

let row_clear t row =
  for q = 0 to t.n - 1 do
    t.xs.(row).(q) <- 0;
    t.zs.(row).(q) <- 0
  done;
  t.r.(row) <- 0

let measure_with t q ~random_outcome =
  let n = t.n in
  (* Does any stabilizer anticommute with Z_q (i.e. has X on q)? *)
  let rec find_p i = if i >= 2 * n then None else if t.xs.(i).(q) = 1 then Some i else find_p (i + 1) in
  match find_p n with
  | Some p ->
      (* Random outcome. *)
      let outcome = random_outcome () in
      for i = 0 to (2 * n) - 1 do
        if i <> p && t.xs.(i).(q) = 1 then rowsum t i p
      done;
      (* Destabilizer row p-n becomes old stabilizer; stabilizer p becomes Z_q. *)
      for j = 0 to n - 1 do
        t.xs.(p - n).(j) <- t.xs.(p).(j);
        t.zs.(p - n).(j) <- t.zs.(p).(j)
      done;
      t.r.(p - n) <- t.r.(p);
      row_clear t p;
      t.zs.(p).(q) <- 1;
      t.r.(p) <- outcome;
      outcome
  | None ->
      (* Deterministic: accumulate into scratch row 2n. *)
      let scratch = 2 * n in
      row_clear t scratch;
      for i = 0 to n - 1 do
        if t.xs.(i).(q) = 1 then rowsum t scratch (i + n)
      done;
      t.r.(scratch)

let measure t rng q = measure_with t q ~random_outcome:(fun () -> if Rng.bool rng then 1 else 0)

let measure_all t rng =
  let out = Array.make t.n 0 in
  for q = 0 to t.n - 1 do
    out.(q) <- measure t rng q
  done;
  out

let expectation_z t q =
  let probe = copy t in
  let rec find_p i =
    if i >= 2 * probe.n then None else if probe.xs.(i).(q) = 1 then Some i else find_p (i + 1)
  in
  match find_p probe.n with
  | Some _ -> None
  | None -> Some (measure_with probe q ~random_outcome:(fun () -> assert false))

let stabilizer_strings t =
  let row_string i =
    let sign = if t.r.(i) = 1 then "-" else "+" in
    let body =
      String.init t.n (fun q ->
          match t.xs.(i).(q), t.zs.(i).(q) with
          | 0, 0 -> 'I'
          | 1, 0 -> 'X'
          | 1, 1 -> 'Y'
          | 0, 1 -> 'Z'
          | _ -> assert false)
    in
    sign ^ body
  in
  List.init t.n (fun i -> row_string (t.n + i))
