(** Stabilizer code descriptions: the repetition ("small") codes Preskill's
    NISQ argument favours and the Surface-17 planar code the paper's
    superconducting stack targets. *)

type t = {
  name : string;
  n : int;  (** Data qubits. *)
  stabilizers : Pauli.t array;
  logical_x : Pauli.t;
  logical_z : Pauli.t;
  distance : int;
}

val syndrome : t -> Pauli.t -> int
(** Bit [i] set iff the error anticommutes with stabilizer [i]. *)

val is_valid : t -> bool
(** All stabilizers mutually commute, logicals commute with stabilizers,
    and the two logicals anticommute. *)

val in_stabilizer_group : t -> Pauli.t -> bool
(** True when the operator is a product of stabilizer generators
    (exhaustive over 2^|S| products — fine for the small codes here). *)

val logical_effect : t -> Pauli.t -> [ `None | `X | `Z | `Y ]
(** Classify a residual operator with trivial syndrome: which logical
    operator it implements on the code space. *)

val bit_flip_repetition : int -> t
(** [[d, 1, d]] repetition code protecting against X errors (stabilizers
    Z_i Z_{i+1}). Distance must be odd. *)

val phase_flip_repetition : int -> t
(** Dual repetition code protecting against Z errors. *)

val surface_17 : t
(** Rotated distance-3 surface code on 9 data qubits (8 stabilizers), the
    layout behind the paper's Surface-17 superconducting experiments. *)

val rotated_surface : int -> t
(** [rotated_surface d] is the rotated surface code of odd distance [d] on
    d^2 data qubits with d^2 - 1 stabilizers; [rotated_surface 3] has the
    same structure as {!surface_17}. Raises for even or small [d]. *)

val steane : t
(** The [[7,1,3]] Steane code: the classic CSS "small code" alternative to
    surface codes in the Preskill-era discussion of section 2.1. *)

val ancilla_count : t -> int
(** Ancillas needed for one syndrome-extraction round (one per stabilizer). *)

val physical_qubits : t -> int
(** Data plus syndrome ancillas: the physical footprint of one logical
    qubit ([2 d^2 - 1] for {!rotated_surface}). Feeds the fault-tolerant
    cost model ({!Qca.Error_budget.fault_tolerant}). *)

val syndrome_circuit : t -> Qca_circuit.Circuit.t
(** Circuit-level syndrome extraction: data qubits [0 .. n-1], ancilla for
    stabilizer [i] at qubit [n + i]; ancillas are prepared, entangled via
    CNOT/CZ ladders, and measured. *)
