(** Stabilizer (CHP) simulator after Aaronson & Gottesman, "Improved
    simulation of stabilizer circuits".

    Simulates Clifford circuits in polynomial time — the workhorse for
    circuit-level QEC where the state-vector simulator would be too small.
    Cross-validated against the QX state vector in the test suite. *)

type t

val create : int -> t
(** |0...0> on n qubits. *)

val qubit_count : t -> int
val copy : t -> t

val reset : t -> unit
(** Back to |0...0> in place, without reallocating — the bulk-shot
    primitive: one tableau per domain is reused across thousands of engine
    shots. *)

val h : t -> int -> unit
val s : t -> int -> unit
val sdag : t -> int -> unit
val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val cnot : t -> int -> int -> unit
(** [cnot tab control target]. *)

val cz : t -> int -> int -> unit
val swap : t -> int -> int -> unit

val apply_pauli : t -> Pauli.t -> unit
(** Apply an error operator. *)

val supports : Qca_circuit.Gate.unitary -> bool
(** Total Clifford classification of the shared gate set: [true] exactly
    when {!apply_gate} accepts the gate. The engine's planner uses this to
    classify circuits without exception probing. *)

val apply_gate : t -> Qca_circuit.Gate.unitary -> int array -> unit
(** Apply any Clifford from the shared gate set; raises [Invalid_argument]
    naming the gate and its operands for non-Clifford gates (those with
    [supports u = false]) or an operand-count mismatch. *)

val measure : t -> Qca_util.Rng.t -> int -> int
(** Z-basis measurement with collapse; deterministic outcomes are returned
    without consuming randomness. *)

val measure_with : t -> int -> random_outcome:(unit -> int) -> int
(** Z-basis measurement with collapse, with the caller deciding random
    outcomes: [random_outcome ()] must return 0 or 1 and is consulted only
    when the measurement is genuinely random (a stabilizer anticommutes with
    Z_q). The engine's Clifford plan uses this to mirror the state-vector
    executor's randomness consumption exactly (see [docs/engine.md]). *)

val measure_all : t -> Qca_util.Rng.t -> int array
(** Measure qubits [0 .. n-1] in order, collapsing as it goes. *)

val expectation_z : t -> int -> int option
(** [Some 0]/[Some 1] when the Z measurement of the qubit is deterministic
    (+1/-1 eigenstate), [None] when random. *)

val stabilizer_strings : t -> string list
(** Current stabilizer generators, with sign prefix, e.g. ["+XX"; "-ZZ"]. *)
