(** The execution-target contract: one [run] signature for every way the
    stack can execute a circuit.

    The paper's portability claim is a common interface between compiler
    output and interchangeable execution targets; [Backend.S] is that
    contract. {!Sim.Backend} (state-vector engine), {!Density.Backend}
    (exact density-matrix evolution) and [Qca_microarch.Controller.Backend]
    (cycle-accurate micro-architecture) all conform, so callers swap targets
    without code changes:

    {[
      let targets : (module Qca_qx.Backend.S) list =
        [ (module Qca_qx.Sim.Backend); (module Qca_qx.Density.Backend) ]
      in
      List.map (fun (module B : Qca_qx.Backend.S) -> B.run ~shots:512 circuit) targets
    ]} *)

module type S = sig
  val name : string
  (** Stable identifier, e.g. ["qx-statevector"]. *)

  val run : ?shots:int -> ?seed:int -> Qca_circuit.Circuit.t -> Engine.result
  (** Execute the circuit: a histogram over measured bitstrings plus the
      per-run metrics report. Default 1024 shots. Seed semantics are the
      engine's (see {!Engine.run}); backends may raise [Invalid_argument]
      on circuits outside their domain (e.g. the density backend on
      feedback circuits). *)
end
