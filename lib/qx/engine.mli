(** Shot-batched execution engine: the single run surface of the stack.

    [run] first analyses a circuit into a {e run plan} (the simulation
    planner, [docs/engine.md]):

    - {b Sampled}: the circuit's measurements are terminal and unconditioned
      and the noise model is ideal, so the state vector is simulated {e once}
      and all shots are drawn from the final probability distribution —
      [O(gates * 2^n + shots * n)] instead of [O(shots * gates * 2^n)].
    - {b Trajectory}: mid-circuit measurement, conditional (feedback) gates,
      mid-circuit resets or per-gate stochastic noise force one full
      state-vector simulation per shot (the Monte-Carlo trajectory path).
    - {b Clifford}: every gate is Clifford (total {!Qca_qec.Tableau.supports}
      classification, no exception probing) and the noise model is ideal, so
      shots run on the Aaronson–Gottesman stabilizer tableau in [O(poly n)]
      per shot. Chosen automatically when the circuit's structure would
      force trajectories (mid-circuit measurement, feedback, resets), or
      when a cost model says the tableau beats the single-pass state vector
      (wide terminal circuits, including every [n > 30] Clifford circuit the
      state vector cannot represent at all).

    Circuits are compiled {e once} into a flat micro-program (an array of
    kernel/conditional/prep/measure micro-ops) executed by a single
    dispatch loop shared by all three plans — no per-shot list re-walk.
    Trajectory and Clifford shots run as a batch across the
    {!Qca_util.Parallel} domain pool with one derived RNG stream per shot
    ({!Qca_util.Rng.streams}), so parallel histograms are bit-identical to
    sequential ones at any [QCA_DOMAINS].

    Every run records per-run metrics — the plan chosen and why, gate-apply
    counts by kernel, wall time per phase, seed — in a {!run_report}
    (JSON-serialisable via {!report_to_json}: the stack's observability
    layer, surfaced by the [qxc] CLI).

    {2 Seed semantics}

    Precedence: an explicit [?rng] wins; otherwise [?seed] creates a fresh
    generator; otherwise the process-wide default stream is used. The
    default stream is created once (seed [0x5EED]) and {e advances across
    calls}, so repeated anonymous runs see fresh randomness while a whole
    program execution stays reproducible bit-for-bit. Pass [?seed] (or
    [?rng]) for run-level reproducibility.

    Trajectory and Clifford plans derive one stream per shot from the run's
    generator (one parent draw per shot, in shot order); the Clifford
    executor consumes exactly one uniform draw per measurement like
    [State.measure], so a Clifford-plan histogram is seed-identical to the
    same circuit forced through the [Trajectory] state-vector plan. *)

type plan = Sampled | Trajectory | Clifford

val plan_to_string : plan -> string

type phase_times = {
  analyse_s : float;  (** Run-plan analysis. *)
  simulate_s : float;  (** State-vector evolution (all shots for trajectory). *)
  sample_s : float;  (** Shot sampling from the final distribution. *)
}

type resilience = {
  faults_injected : (string * int) list;
      (** Injected-fault fires by {!Qca_util.Fault.site_label}, cumulative
          over the injector's lifetime. *)
  retries : int;  (** Transient-fault retries performed. *)
  faulted_shots : int;
      (** Shots lost after exhausting retries (excluded from the
          histogram): [faulted_shots + histogram total = shots]. *)
  backoff_ns : int;  (** Simulated backoff time accumulated by retries. *)
  degraded : string option;
      (** Set when a fallback backend absorbed the run (degradation event,
          see [docs/resilience.md]). *)
}

val no_resilience : resilience
(** All counters zero, no degradation: the report value when resilience is
    off. *)

type fusion_stats = {
  gates_in : int;
      (** Unitary gates that reached the fusion pre-pass. Conditional
          gates execute outside the pass and are not counted. *)
  kernels : int;  (** Kernel sweeps executed per pass (fused or single). *)
  fused_1q : int;  (** Fused same-qubit single-qubit runs. *)
  fused_diag : int;  (** Coalesced diagonal-gate runs. *)
}
(** Gate-fusion pre-pass statistics ([docs/performance.md]). For a
    trajectory run the plan is compiled {e once} and executed per shot, so
    the counts are per compile, not per shot. *)

val no_fusion : fusion_stats
(** All counters zero: the report value when the pass did not run (noisy
    runs, non-engine backends). *)

type cache_stats = {
  cache_hits : int;
      (** Runs served whole from the job service's result cache. *)
  cache_shared : int;
      (** Runs that reused another job's compiled distribution
          (cross-request shot batching, [docs/service.md]). *)
}
(** Result-cache counters. Always {!no_cache} for direct engine runs; the
    job service ({!Qca_service.Service}) fills them in when it serves a run
    from cache or batches it against an identical in-flight circuit. *)

val no_cache : cache_stats

type run_report = {
  plan : plan;
  plan_reason : string;  (** Why this plan was chosen (decision-table row). *)
  shots : int;
  seed : int option;  (** The [?seed] argument, when one was given. *)
  qubit_count : int;
  instruction_count : int;
  gate_applies : (string * int) list;
      (** State-vector kernel invocations by gate name, sorted by decreasing
          count. Trajectory runs aggregate over all shots; sampled runs count
          the single pass. *)
  measurements : int;
      (** Measurement events: actual collapses for trajectory runs,
          [shots * measured qubits] for sampled runs. *)
  wall : phase_times;
  resilience : resilience;
      (** Fault/retry/degradation counters ({!no_resilience} when the run
          had no injector and no fallback). *)
  fusion : fusion_stats;
      (** Gate-fusion pre-pass statistics ({!no_fusion} when the pass did
          not run). *)
  cache : cache_stats;
      (** Result-cache / shot-batching counters ({!no_cache} for direct
          runs). *)
}

type result = {
  histogram : (string * int) list;
      (** Measured bitstrings (qubit 0 rightmost, '-' for unmeasured),
          sorted by decreasing count. *)
  report : run_report;
}

val analyse :
  ?noise:Noise.model -> ?shots:int -> Qca_circuit.Circuit.t -> plan * string
(** The run plan [run] would choose, with the reason. [noise] defaults to
    {!Noise.ideal}; [shots] (default 1024) feeds the Clifford-vs-sampled
    cost model. *)

val clifford_blocker :
  Qca_circuit.Circuit.t -> (string * int) option
(** The first gate the tableau cannot simulate — its name and instruction
    index — or [None] when the circuit is all-Clifford. Total
    classification via {!Qca_qec.Tableau.supports}; never raises. *)

val sv_max_qubits : int
(** Width ceiling of the state-vector layer (30): beyond it only the
    tableau plan can run the circuit. *)

val structure : Qca_circuit.Circuit.t -> plan * string
(** The sampled-vs-trajectory {e structure} verdict alone — the first stage
    of {!analyse}, before noise and the Clifford upgrade are considered.
    [Sampled] means terminal unconditioned measurements; [Trajectory]
    carries the structural reason (mid-circuit measurement, feedback,
    reset of a live qubit). Never returns [Clifford]. *)

val clifford_wins : n:int -> gates:int -> measures:int -> shots:int -> bool
(** The sampled-vs-tableau cost model used by {!analyse} for all-Clifford
    circuits with sampled structure, exposed so the static estimator
    ({!Qca_analysis.Estimate}) can reproduce the planner's decision from
    symbolic gate counts without building the unrolled circuit. *)

val run :
  ?noise:Noise.model ->
  ?seed:int ->
  ?rng:Qca_util.Rng.t ->
  ?plan:plan ->
  ?shots:int ->
  ?faults:Qca_util.Fault.t ->
  ?policy:Qca_util.Resilience.policy ->
  ?fusion:bool ->
  Qca_circuit.Circuit.t ->
  result
(** Execute [shots] shots (default 1024). [plan] overrides the analysis:
    forcing [Trajectory] is always allowed (used to benchmark the paths
    against each other); forcing [Sampled] on a circuit that needs
    trajectories raises [Invalid_argument]; forcing [Clifford] on a
    non-Clifford circuit (or under a stochastic noise model) raises a
    structured {!Qca_util.Error.Error} whose context names the first
    offending gate and its instruction index.

    [faults] enables fault injection at the {!Qca_util.Fault.Backend_transient}
    site: each shot may transiently fail and is retried per [policy]
    (default {!Qca_util.Resilience.default_policy}); shots that exhaust
    their retries are dropped from the histogram and counted in
    [report.resilience.faulted_shots]. Without [faults] the run is
    bit-identical to the pre-resilience engine.

    [fusion] (default [true]) controls the gate-fusion pre-pass. Fused
    kernels are bit-identical to gate-by-gate application, so this only
    changes speed and the [report.fusion] counters, never results. *)

val run_checked :
  ?noise:Noise.model ->
  ?seed:int ->
  ?rng:Qca_util.Rng.t ->
  ?plan:plan ->
  ?shots:int ->
  ?faults:Qca_util.Fault.t ->
  ?policy:Qca_util.Resilience.policy ->
  ?fusion:bool ->
  Qca_circuit.Circuit.t ->
  (result, Qca_util.Error.t) Stdlib.result
(** [run] with structured errors instead of exceptions: raised
    {!Qca_util.Error.Error}, [Failure] and [Invalid_argument] become the
    [Error] case. *)

val success_probability : result -> accept:(int array -> bool) -> float
(** Fraction of histogram mass whose classical record (as in
    {!Sim.outcome}) satisfies [accept]. *)

val bitstring : int array -> string
(** Render a classical record ([-1] unmeasured) as a histogram key. *)

val classical_of_key : string -> int array
(** Inverse of {!bitstring}. *)

val report_to_json : run_report -> string
(** One-line JSON object (metrics schema documented in [docs/engine.md]). *)

val default_rng : unit -> Qca_util.Rng.t
(** The process-wide default generator (see seed semantics above). *)

(** {2 Plumbing shared with the other execution surfaces} *)

val exec_shot :
  ?noise:Noise.model ->
  Qca_util.Rng.t ->
  Qca_circuit.Circuit.t ->
  State.t * int array
(** One per-shot trajectory: fresh |0...0> state, measurement collapse,
    classical feedback, per-gate stochastic noise. This is the executor
    behind {!Sim.run} and the engine's trajectory plan. *)

val fold_trajectories :
  ?noise:Noise.model ->
  rng:Qca_util.Rng.t ->
  shots:int ->
  init:'a ->
  f:('a -> State.t -> int array -> 'a) ->
  Qca_circuit.Circuit.t ->
  'a
(** Run [shots] per-shot trajectories, folding over (final state, classical
    record): the building block for estimators that need more than counts
    (e.g. {!Sim.state_fidelity_vs_ideal}). Shots execute in
    memory-bounded windows across the domain pool, each on its own derived
    RNG stream, and the fold itself runs in shot order — results are
    bit-identical to a sequential run at any [QCA_DOMAINS]. *)

val terminal_split :
  Qca_circuit.Circuit.t -> (Qca_circuit.Gate.t list * bool array) option
(** When the circuit qualifies for the sampled plan: its unitary prefix and
    the measured-qubit mask. [None] when trajectories are required. *)

val sample_histogram :
  probabilities:float array ->
  measured:bool array ->
  rng:Qca_util.Rng.t ->
  shots:int ->
  (string * int) list
(** Draw [shots] bitstrings from an explicit distribution, masking
    unmeasured qubits to '-' (shared with the density backend). *)

type sampled_distribution = {
  probabilities : float array;  (** Final-state distribution, length 2^n. *)
  dist_measured : bool array;  (** Measured-qubit mask. *)
  dist_fusion : fusion_stats;  (** Fusion stats of the one compile. *)
  dist_gate_applies : (string * int) list;
      (** Kernel invocations of the one simulation pass. *)
}
(** The reusable part of a sampled-plan run: simulate once, sample any
    number of independent shot batches from it with {!sample_histogram}.
    This is the unit of the job service's cross-request shot batching
    ([docs/service.md]): jobs whose circuits share a digest share one of
    these. *)

val sampled_distribution :
  ?fusion:bool -> Qca_circuit.Circuit.t -> sampled_distribution option
(** Simulate the circuit's unitary prefix once and return its final
    distribution, or [None] when the circuit needs trajectories. Sampling
    from the result with a seed-[s] generator is bit-identical to
    [run ~seed:s] on the same circuit (the simulate phase consumes no
    randomness). *)

(** {2 The compiled kernel plan}

    Exposed for benchmarks and tests; [run] drives these internally. *)

type fused_kernel =
  | Single of Qca_circuit.Gate.unitary * int array * string
      (** One gate, one kernel sweep; the string is the cached gate name. *)
  | Fused_1q of int * State.fused1q_plan * string list
      (** A same-qubit single-qubit run: qubit, compiled run, gate names. *)
  | Fused_diag of State.diag_plan * string list
      (** A coalesced diagonal run (any operands): plan, gate names. *)

type plan_step =
  | Kernel of fused_kernel
  | Instr of Qca_circuit.Gate.t
      (** Non-unitary instruction (measure/prep/conditional/barrier),
          executed by the shot executor, never fused across. *)

val compile_steps :
  fusion:bool -> Qca_circuit.Gate.t list -> plan_step list * fusion_stats
(** The fusion pre-pass. With [fusion:false] every unitary becomes a
    [Single] kernel (so both settings run the same executor). *)

val apply_kernel : State.t -> fused_kernel -> unit
(** Apply one compiled kernel to a state (no tally, no tracing). *)
