module Circuit = Qca_circuit.Circuit
module Gate = Qca_circuit.Gate
module Rng = Qca_util.Rng
module Qerror = Qca_util.Error
module Fault = Qca_util.Fault
module Resilience = Qca_util.Resilience
module Trace = Qca_util.Trace

type plan = Sampled | Trajectory

let plan_to_string = function Sampled -> "sampled" | Trajectory -> "trajectory"

type phase_times = { analyse_s : float; simulate_s : float; sample_s : float }

type resilience = {
  faults_injected : (string * int) list;
  retries : int;
  faulted_shots : int;
  backoff_ns : int;
  degraded : string option;
}

let no_resilience =
  { faults_injected = []; retries = 0; faulted_shots = 0; backoff_ns = 0; degraded = None }

type fusion_stats = {
  gates_in : int;
  kernels : int;
  fused_1q : int;
  fused_diag : int;
}

let no_fusion = { gates_in = 0; kernels = 0; fused_1q = 0; fused_diag = 0 }

type cache_stats = { cache_hits : int; cache_shared : int }

let no_cache = { cache_hits = 0; cache_shared = 0 }

type run_report = {
  plan : plan;
  plan_reason : string;
  shots : int;
  seed : int option;
  qubit_count : int;
  instruction_count : int;
  gate_applies : (string * int) list;
  measurements : int;
  wall : phase_times;
  resilience : resilience;
  fusion : fusion_stats;
  cache : cache_stats;
}

type result = { histogram : (string * int) list; report : run_report }

(* --- seed semantics ---------------------------------------------------- *)

(* One process-wide generator backs every run that passes neither [?rng] nor
   [?seed]. It is created once (seed 0x5EED) and advances across calls, so
   repeated anonymous runs see fresh randomness while a whole program run
   stays bit-for-bit reproducible. *)
let shared_rng = Rng.create 0x5EED

let default_rng () = shared_rng

let resolve_rng seed rng =
  match rng, seed with
  | Some r, _ -> r
  | None, Some s -> Rng.create s
  | None, None -> shared_rng

(* --- bitstrings -------------------------------------------------------- *)

let bitstring classical =
  let n = Array.length classical in
  String.init n (fun i ->
      match classical.(n - 1 - i) with
      | -1 -> '-'
      | 0 -> '0'
      | 1 -> '1'
      | _ -> assert false)

let classical_of_key key =
  let n = String.length key in
  Array.init n (fun i ->
      match key.[n - 1 - i] with
      | '-' -> -1
      | '0' -> 0
      | '1' -> 1
      | c -> invalid_arg (Printf.sprintf "Engine.classical_of_key: '%c'" c))

(* --- instrumentation --------------------------------------------------- *)

type tally = { applies : (string, int) Hashtbl.t; mutable measures : int }

let fresh_tally () = { applies = Hashtbl.create 16; measures = 0 }

let count_apply tally name =
  Hashtbl.replace tally.applies name
    (1 + Option.value ~default:0 (Hashtbl.find_opt tally.applies name))

let gate_applies_of tally =
  Hashtbl.fold (fun name count acc -> (name, count) :: acc) tally.applies []
  |> List.sort (fun (na, a) (nb, b) ->
         match compare b a with 0 -> compare na nb | c -> c)

(* --- run-plan analysis ------------------------------------------------- *)

(* A circuit takes the single-pass sampled plan when its measurements are
   terminal and unconditioned: a unitary prefix (leading preps on untouched
   qubits are no-ops on |0...0> and allowed), then only measure/barrier
   instructions. Anything stochastic mid-circuit forces trajectories. *)
let classify_structure circuit =
  let n = Circuit.qubit_count circuit in
  let touched = Array.make n false in
  let measured = Array.make n false in
  let seen_measure = ref false in
  let verdict = ref None in
  let fail reason = if !verdict = None then verdict := Some reason in
  List.iter
    (fun instr ->
      if !verdict = None then
        match instr with
        | Gate.Unitary (_, ops) ->
            if !seen_measure then fail "gate after measurement (mid-circuit measurement)"
            else Array.iter (fun q -> touched.(q) <- true) ops
        | Gate.Conditional _ -> fail "conditional (feedback) gate"
        | Gate.Prep q ->
            if !seen_measure then fail "prep after measurement (mid-circuit reset)"
            else if touched.(q) then fail "mid-circuit prep (reset of a live qubit)"
        | Gate.Measure q ->
            seen_measure := true;
            measured.(q) <- true
        | Gate.Barrier _ -> ())
    (Circuit.instructions circuit);
  match !verdict with
  | Some reason -> (Trajectory, reason, measured)
  | None -> (Sampled, "terminal unconditioned measurements", measured)

let analyse ?(noise = Noise.ideal) circuit =
  if not (Noise.is_ideal noise) then (Trajectory, "stochastic noise model")
  else
    let plan, reason, _ = classify_structure circuit in
    (plan, reason)

let terminal_split circuit =
  match classify_structure circuit with
  | Trajectory, _, _ -> None
  | Sampled, _, measured ->
      let prefix =
        List.filter
          (fun instr -> match instr with Gate.Unitary _ -> true | _ -> false)
          (Circuit.instructions circuit)
      in
      Some (prefix, measured)

(* --- gate fusion ------------------------------------------------------- *)

(* The fusion pre-pass folds adjacent unitaries into fused kernels:
   maximal runs of consecutive diagonal gates (any operands) become one
   diagonal sweep, and runs of single-qubit gates on the same qubit become
   one pair sweep. Fused kernels keep each gate's specialised arithmetic
   (see State), so a fused run is bit-identical to the unfused sequence —
   fusion is a pure traversal-order optimisation. Runs never cross
   measurements, preps, conditionals or barriers, and the pass only runs
   when the noise model is ideal (noise is applied after each gate, which
   pins the gate-by-gate schedule). *)

type fused_kernel =
  | Single of Gate.unitary * int array * string
  | Fused_1q of int * State.fused1q_plan * string list
  | Fused_diag of State.diag_plan * string list

type plan_step = Kernel of fused_kernel | Instr of Gate.t

let compile_steps ~fusion instrs =
  let gates_in = ref 0 and kernels = ref 0 and fused_1q = ref 0 and fused_diag = ref 0 in
  let rec take_diag acc = function
    | Gate.Unitary (u, ops) :: rest when Gate.is_diagonal u ->
        take_diag ((u, ops) :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec take_1q q acc = function
    | Gate.Unitary (u, ops) :: rest when Gate.arity u = 1 && ops.(0) = q ->
        take_1q q (u :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let single u ops =
    incr gates_in;
    incr kernels;
    Kernel (Single (u, ops, Gate.name u))
  in
  let rec go acc instrs =
    match instrs with
    | [] -> List.rev acc
    | (Gate.Conditional _ | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _) as instr :: rest
      ->
        go (Instr instr :: acc) rest
    | Gate.Unitary (u, ops) :: rest when not fusion -> go (single u ops :: acc) rest
    | Gate.Unitary (u, ops) :: rest as all -> (
        let diag_run, diag_rest =
          if Gate.is_diagonal u then take_diag [] all else ([], all)
        in
        match diag_run with
        | _ :: _ :: _ ->
            (* Every gate in the run is diagonal, so the plan exists. *)
            let dplan = Option.get (State.diag_plan_of diag_run) in
            gates_in := !gates_in + List.length diag_run;
            incr kernels;
            incr fused_diag;
            let names = List.map (fun (du, _) -> Gate.name du) diag_run in
            go (Kernel (Fused_diag (dplan, names)) :: acc) diag_rest
        | _ ->
            if Gate.arity u = 1 then begin
              let q = ops.(0) in
              match take_1q q [] all with
              | (_ :: _ :: _ as run), rest' ->
                  gates_in := !gates_in + List.length run;
                  incr kernels;
                  incr fused_1q;
                  go
                    (Kernel (Fused_1q (q, State.fused1q_plan_of run, List.map Gate.name run))
                    :: acc)
                    rest'
              | _ -> go (single u ops :: acc) rest
            end
            else go (single u ops :: acc) rest)
  in
  let steps = go [] instrs in
  ( steps,
    {
      gates_in = !gates_in;
      kernels = !kernels;
      fused_1q = !fused_1q;
      fused_diag = !fused_diag;
    } )

let apply_kernel state = function
  | Single (u, ops, _) -> State.apply state u ops
  | Fused_1q (q, p, _) -> State.apply_fused1q state p q
  | Fused_diag (p, _) -> State.apply_diag_plan state p

(* --- trajectory executor ----------------------------------------------- *)

(* The canonical per-shot executor (also backing [Sim.run]): one fresh state
   vector per shot, measurement collapse, classical feedback, per-gate
   stochastic noise. *)
let exec_instrumented ?(noise = Noise.ideal) ?tally rng circuit =
  let n = Circuit.qubit_count circuit in
  let state = State.create n in
  let classical = Array.make n (-1) in
  let ideal = Noise.is_ideal noise in
  (* Gate-class counters feed the tracing layer; the [enabled] guard keeps
     the string construction off the disabled hot path. *)
  let record name =
    (match tally with Some t -> count_apply t name | None -> ());
    if Trace.enabled () then Trace.add_counter ("qx.apply." ^ name) 1
  in
  let execute instr =
    match instr with
    | Gate.Unitary (u, ops) ->
        State.apply state u ops;
        record (Gate.name u);
        if not ideal then Noise.after_gate noise state rng u ops
    | Gate.Conditional (bit, u, ops) ->
        if classical.(bit) = 1 then begin
          State.apply state u ops;
          record (Gate.name u);
          if not ideal then Noise.after_gate noise state rng u ops
        end
    | Gate.Prep q ->
        let current = State.measure state rng q in
        if current = 1 then State.apply state Gate.X [| q |];
        if (not ideal) && Rng.bernoulli rng noise.Noise.prep_error then
          State.apply state Gate.X [| q |]
    | Gate.Measure q ->
        let outcome = State.measure state rng q in
        (match tally with Some t -> t.measures <- t.measures + 1 | None -> ());
        if Trace.enabled () then Trace.add_counter "qx.measure" 1;
        classical.(q) <- (if ideal then outcome else Noise.flip_readout noise rng outcome)
    | Gate.Barrier _ -> ()
  in
  List.iter execute (Circuit.instructions circuit);
  (state, classical)

let exec_shot ?noise rng circuit = exec_instrumented ?noise rng circuit

(* Ideal-noise per-shot executor over a compiled (possibly fused) plan.
   Consumes randomness exactly where [exec_instrumented] does (Prep and
   Measure only — the plan exists only for ideal noise), and fused kernels
   are bit-identical to gate-by-gate application, so trajectories match
   the unfused executor bit for bit. The tally still counts every
   {e logical} gate: fused kernels record each constituent gate name. *)
let exec_plan ~tally rng steps n =
  let state = State.create n in
  let classical = Array.make n (-1) in
  let record name =
    count_apply tally name;
    if Trace.enabled () then Trace.add_counter ("qx.apply." ^ name) 1
  in
  List.iter
    (fun step ->
      match step with
      | Kernel k -> (
          apply_kernel state k;
          match k with
          | Single (_, _, name) -> record name
          | Fused_1q (_, _, names) | Fused_diag (_, names) -> List.iter record names)
      | Instr (Gate.Conditional (bit, u, ops)) ->
          if classical.(bit) = 1 then begin
            State.apply state u ops;
            record (Gate.name u)
          end
      | Instr (Gate.Prep q) ->
          let current = State.measure state rng q in
          if current = 1 then State.apply state Gate.X [| q |]
      | Instr (Gate.Measure q) ->
          let outcome = State.measure state rng q in
          tally.measures <- tally.measures + 1;
          if Trace.enabled () then Trace.add_counter "qx.measure" 1;
          classical.(q) <- outcome
      | Instr (Gate.Barrier _) -> ()
      | Instr (Gate.Unitary _) -> assert false)
    steps;
  classical

let fold_trajectories ?noise ~rng ~shots ~init ~f circuit =
  let acc = ref init in
  for _ = 1 to shots do
    let state, classical = exec_shot ?noise rng circuit in
    acc := f !acc state classical
  done;
  !acc

let sorted_histogram table =
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* Engine-level fault injection models the whole backend hiccuping for one
   shot (Fault.Backend_transient); finer-grained sites live in the
   micro-architecture controller. A shot lost after [policy.max_retries]
   re-attempts is counted in [counters.faulted_shots] and excluded from the
   histogram. *)
let inject_backend_fault faults ~site =
  match faults with
  | Some f when Fault.fires f Fault.Backend_transient ->
      Qerror.fail ~transient:true ~site
        (Qerror.Backend_transient "injected backend fault")
  | Some _ | None -> ()

let run_trajectory ?(faults = None) ~policy ~counters ~shot_exec ~shots () =
  let table = Hashtbl.create 64 in
  let record classical =
    let key = bitstring classical in
    Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  (match faults with
  | None ->
      for _ = 1 to shots do
        record (shot_exec ())
      done
  | Some _ ->
      for _ = 1 to shots do
        let shot () =
          inject_backend_fault faults ~site:"Engine.run_trajectory";
          shot_exec ()
        in
        match Resilience.with_retries policy counters shot with
        | Ok classical -> record classical
        | Error _ -> counters.Resilience.faulted_shots <- counters.Resilience.faulted_shots + 1
      done);
  sorted_histogram table

(* Sampled-plan equivalent: decide per-shot survival up front (a backend
   fault costs the shot, not the single-pass simulation), then draw only the
   surviving shots from the final distribution. *)
let surviving_shots ?(faults = None) ~policy ~counters shots =
  match faults with
  | None -> shots
  | Some _ ->
      let ok = ref 0 in
      for _ = 1 to shots do
        match
          Resilience.with_retries policy counters (fun () ->
              inject_backend_fault faults ~site:"Engine.run_sampled")
        with
        | Ok () -> incr ok
        | Error _ ->
            counters.Resilience.faulted_shots <- counters.Resilience.faulted_shots + 1
      done;
      !ok

(* --- sampled plan ------------------------------------------------------ *)

let sample_histogram ~probabilities ~measured ~rng ~shots =
  let dim = Array.length probabilities in
  let n = Array.length measured in
  let cumulative = Array.make dim 0.0 in
  let acc = ref 0.0 in
  for k = 0 to dim - 1 do
    acc := !acc +. probabilities.(k);
    cumulative.(k) <- !acc
  done;
  let total = !acc in
  let sample () =
    let target = Rng.float rng total in
    let lo = ref 0 and hi = ref (dim - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) > target then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let mmask =
    let m = ref 0 in
    Array.iteri (fun q yes -> if yes then m := !m lor (1 lsl q)) measured;
    !m
  in
  let counts = Hashtbl.create 64 in
  for _ = 1 to shots do
    let k = sample () land mmask in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let key_of k =
    String.init n (fun i ->
        let q = n - 1 - i in
        if measured.(q) then if k land (1 lsl q) <> 0 then '1' else '0' else '-')
  in
  Hashtbl.fold (fun k count acc -> (key_of k, count) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let run_sampled ~tally rng ~shots ~measured ~steps circuit =
  (* [shots] here is the surviving-shot count (faults already applied). *)
  let n = Circuit.qubit_count circuit in
  let state = State.create n in
  let record name =
    count_apply tally name;
    if Trace.enabled () then Trace.add_counter ("qx.apply." ^ name) 1
  in
  let sim_sp = Trace.begin_span "engine.simulate" in
  List.iter
    (fun step ->
      match step with
      | Kernel k -> (
          apply_kernel state k;
          match k with
          | Single (_, _, name) -> record name
          | Fused_1q (_, _, names) | Fused_diag (_, names) -> List.iter record names)
      | Instr (Gate.Prep _ | Gate.Barrier _ | Gate.Measure _) -> ()
      | Instr (Gate.Unitary _) -> assert false
      | Instr (Gate.Conditional _) -> invalid_arg "Engine: conditional gate in sampled plan")
    steps;
  Trace.annotate sim_sp (fun () ->
      [ ("gate_applies", Trace.Int (Hashtbl.fold (fun _ c acc -> acc + c) tally.applies 0)) ]);
  Trace.end_span sim_sp;
  let t_sim = Sys.time () in
  let histogram =
    Trace.with_span "engine.sample" (fun sample_sp ->
        Trace.annotate sample_sp (fun () -> [ ("shots", Trace.Int shots) ]);
        sample_histogram ~probabilities:(State.probabilities state) ~measured ~rng ~shots)
  in
  let measured_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 measured in
  tally.measures <- shots * measured_count;
  if Trace.enabled () then Trace.add_counter "qx.measure" tally.measures;
  (histogram, t_sim)

(* --- shared sampled-plan distribution ---------------------------------- *)

type sampled_distribution = {
  probabilities : float array;
  dist_measured : bool array;
  dist_fusion : fusion_stats;
  dist_gate_applies : (string * int) list;
}

let sampled_distribution ?(fusion = true) circuit =
  match classify_structure circuit with
  | Trajectory, _, _ -> None
  | Sampled, _, measured ->
      let steps, fstats = compile_steps ~fusion (Circuit.instructions circuit) in
      let tally = fresh_tally () in
      let state = State.create (Circuit.qubit_count circuit) in
      List.iter
        (fun step ->
          match step with
          | Kernel k -> (
              apply_kernel state k;
              match k with
              | Single (_, _, name) -> count_apply tally name
              | Fused_1q (_, _, names) | Fused_diag (_, names) ->
                  List.iter (count_apply tally) names)
          | Instr _ -> ())
        steps;
      Some
        {
          probabilities = State.probabilities state;
          dist_measured = measured;
          dist_fusion = fstats;
          dist_gate_applies = gate_applies_of tally;
        }

(* --- the run surface --------------------------------------------------- *)

let run ?(noise = Noise.ideal) ?seed ?rng ?plan ?(shots = 1024) ?faults
    ?(policy = Resilience.default_policy) ?(fusion = true) circuit =
  if shots < 1 then invalid_arg "Engine.run: shots must be positive";
  Trace.with_span "engine.run" (fun run_sp ->
  let counters = Resilience.fresh_counters () in
  let t0 = Sys.time () in
  let analyse_sp = Trace.begin_span "engine.analyse" in
  let chosen, reason, measured =
    let auto () =
      if not (Noise.is_ideal noise) then
        (Trajectory, "stochastic noise model", [||])
      else classify_structure circuit
    in
    match plan with
    | None -> auto ()
    | Some Trajectory -> (Trajectory, "trajectory plan forced by caller", [||])
    | Some Sampled -> (
        match auto () with
        | Sampled, _, measured -> (Sampled, "sampled plan forced by caller", measured)
        | Trajectory, r, _ ->
            invalid_arg ("Engine.run: sampled plan forced but circuit needs trajectories: " ^ r))
  in
  Trace.annotate analyse_sp (fun () ->
      [ ("plan", Trace.String (plan_to_string chosen)); ("reason", Trace.String reason) ]);
  Trace.end_span analyse_sp;
  Trace.annotate run_sp (fun () ->
      [
        ("plan", Trace.String (plan_to_string chosen));
        ("shots", Trace.Int shots);
        ("qubits", Trace.Int (Circuit.qubit_count circuit));
        ("instructions", Trace.Int (Circuit.length circuit));
      ]);
  let rng = resolve_rng seed rng in
  (* Fusion pre-pass: only for ideal noise (per-gate stochastic noise pins
     the gate-by-gate schedule). [~fusion:false] still compiles — into
     single-gate kernels — so both paths run the same executor. *)
  let ideal = Noise.is_ideal noise in
  let steps, fstats =
    if ideal then
      Trace.with_span "engine.fuse" (fun fuse_sp ->
          let steps, stats = compile_steps ~fusion (Circuit.instructions circuit) in
          Trace.annotate fuse_sp (fun () ->
              [
                ("fusion", Trace.Bool fusion);
                ("gates_in", Trace.Int stats.gates_in);
                ("kernels", Trace.Int stats.kernels);
                ("fused_1q", Trace.Int stats.fused_1q);
                ("fused_diag", Trace.Int stats.fused_diag);
              ]);
          if Trace.enabled () then begin
            Trace.add_counter "qx.fusion.gates_in" stats.gates_in;
            Trace.add_counter "qx.fusion.kernels" stats.kernels
          end;
          (Some steps, stats))
    else (None, no_fusion)
  in
  let t1 = Sys.time () in
  let tally = fresh_tally () in
  let histogram, t_sample_start =
    match chosen with
    | Sampled ->
        let survivors = surviving_shots ~faults ~policy ~counters shots in
        run_sampled ~tally rng ~shots:survivors ~measured ~steps:(Option.get steps) circuit
    | Trajectory ->
        let n = Circuit.qubit_count circuit in
        let shot_exec =
          match steps with
          | Some steps -> fun () -> exec_plan ~tally rng steps n
          | None -> fun () -> snd (exec_instrumented ~noise ~tally rng circuit)
        in
        let h =
          Trace.with_span "engine.simulate" (fun sim_sp ->
              Trace.annotate sim_sp (fun () -> [ ("trajectories", Trace.Int shots) ]);
              run_trajectory ~faults ~policy ~counters ~shot_exec ~shots ())
        in
        (h, Sys.time ())
  in
  let t2 = Sys.time () in
  let resilience =
    match faults with
    | None -> no_resilience
    | Some f ->
        {
          faults_injected = Fault.counts f;
          retries = counters.Resilience.retries;
          faulted_shots = counters.Resilience.faulted_shots;
          backoff_ns = counters.Resilience.backoff_total_ns;
          degraded = None;
        }
  in
  Trace.annotate run_sp (fun () ->
      match faults with
      | None -> []
      | Some _ ->
          [
            ("faulted_shots", Trace.Int resilience.faulted_shots);
            ("retries", Trace.Int resilience.retries);
          ]);
  {
    histogram;
    report =
      {
        plan = chosen;
        plan_reason = reason;
        shots;
        seed;
        qubit_count = Circuit.qubit_count circuit;
        instruction_count = Circuit.length circuit;
        gate_applies = gate_applies_of tally;
        measurements = tally.measures;
        wall =
          {
            analyse_s = t1 -. t0;
            simulate_s = t_sample_start -. t1;
            sample_s = t2 -. t_sample_start;
          };
        resilience;
        fusion = fstats;
        cache = no_cache;
      };
  })

let run_checked ?noise ?seed ?rng ?plan ?shots ?faults ?policy ?fusion circuit =
  Qerror.protect ~site:"Engine.run" (fun () ->
      run ?noise ?seed ?rng ?plan ?shots ?faults ?policy ?fusion circuit)

let success_probability result ~accept =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 result.histogram in
  if total = 0 then 0.0
  else
    let hits =
      List.fold_left
        (fun acc (key, c) -> if accept (classical_of_key key) then acc + c else acc)
        0 result.histogram
    in
    float_of_int hits /. float_of_int total

(* --- metrics as JSON --------------------------------------------------- *)

let json_escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let report_to_json r =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "{\"plan\":\"%s\",\"plan_reason\":\"%s\",\"shots\":%d,\"seed\":%s,"
       (plan_to_string r.plan) (json_escape r.plan_reason) r.shots
       (match r.seed with Some s -> string_of_int s | None -> "null"));
  Buffer.add_string buffer
    (Printf.sprintf "\"qubits\":%d,\"instructions\":%d,\"measurements\":%d,"
       r.qubit_count r.instruction_count r.measurements);
  Buffer.add_string buffer "\"gate_applies\":{";
  List.iteri
    (fun i (name, count) ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (Printf.sprintf "\"%s\":%d" (json_escape name) count))
    r.gate_applies;
  Buffer.add_string buffer "},";
  Buffer.add_string buffer
    (Printf.sprintf
       "\"wall_s\":{\"analyse\":%.6f,\"simulate\":%.6f,\"sample\":%.6f},"
       r.wall.analyse_s r.wall.simulate_s r.wall.sample_s);
  (* Every counter family lives under one stable "counters" object (the
     metrics schema in docs/engine.md): fusion, fault/retry and cache. *)
  Buffer.add_string buffer "\"counters\":{";
  Buffer.add_string buffer
    (Printf.sprintf
       "\"fusion\":{\"gates_in\":%d,\"kernels\":%d,\"fused_1q\":%d,\"fused_diag\":%d},"
       r.fusion.gates_in r.fusion.kernels r.fusion.fused_1q r.fusion.fused_diag);
  Buffer.add_string buffer "\"resilience\":{\"faults\":{";
  List.iteri
    (fun i (site, count) ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (Printf.sprintf "\"%s\":%d" (json_escape site) count))
    r.resilience.faults_injected;
  Buffer.add_string buffer
    (Printf.sprintf "},\"retries\":%d,\"faulted_shots\":%d,\"backoff_ns\":%d,\"degraded\":%s},"
       r.resilience.retries r.resilience.faulted_shots r.resilience.backoff_ns
       (match r.resilience.degraded with
       | Some why -> "\"" ^ json_escape why ^ "\""
       | None -> "null"));
  Buffer.add_string buffer
    (Printf.sprintf "\"cache\":{\"hits\":%d,\"shared\":%d}}}" r.cache.cache_hits
       r.cache.cache_shared);
  Buffer.contents buffer
