module Circuit = Qca_circuit.Circuit
module Gate = Qca_circuit.Gate
module Rng = Qca_util.Rng
module Qerror = Qca_util.Error
module Fault = Qca_util.Fault
module Resilience = Qca_util.Resilience
module Trace = Qca_util.Trace
module Parallel = Qca_util.Parallel
module Tableau = Qca_qec.Tableau

type plan = Sampled | Trajectory | Clifford

let plan_to_string = function
  | Sampled -> "sampled"
  | Trajectory -> "trajectory"
  | Clifford -> "clifford"

type phase_times = { analyse_s : float; simulate_s : float; sample_s : float }

type resilience = {
  faults_injected : (string * int) list;
  retries : int;
  faulted_shots : int;
  backoff_ns : int;
  degraded : string option;
}

let no_resilience =
  { faults_injected = []; retries = 0; faulted_shots = 0; backoff_ns = 0; degraded = None }

type fusion_stats = {
  gates_in : int;
  kernels : int;
  fused_1q : int;
  fused_diag : int;
}

let no_fusion = { gates_in = 0; kernels = 0; fused_1q = 0; fused_diag = 0 }

type cache_stats = { cache_hits : int; cache_shared : int }

let no_cache = { cache_hits = 0; cache_shared = 0 }

type run_report = {
  plan : plan;
  plan_reason : string;
  shots : int;
  seed : int option;
  qubit_count : int;
  instruction_count : int;
  gate_applies : (string * int) list;
  measurements : int;
  wall : phase_times;
  resilience : resilience;
  fusion : fusion_stats;
  cache : cache_stats;
}

type result = { histogram : (string * int) list; report : run_report }

(* --- seed semantics ---------------------------------------------------- *)

(* One process-wide generator backs every run that passes neither [?rng] nor
   [?seed]. It is created once (seed 0x5EED) and advances across calls, so
   repeated anonymous runs see fresh randomness while a whole program run
   stays bit-for-bit reproducible. *)
let shared_rng = Rng.create 0x5EED

let default_rng () = shared_rng

let resolve_rng seed rng =
  match rng, seed with
  | Some r, _ -> r
  | None, Some s -> Rng.create s
  | None, None -> shared_rng

(* --- bitstrings -------------------------------------------------------- *)

let bitstring classical =
  let n = Array.length classical in
  String.init n (fun i ->
      match classical.(n - 1 - i) with
      | -1 -> '-'
      | 0 -> '0'
      | 1 -> '1'
      | _ -> assert false)

let classical_of_key key =
  let n = String.length key in
  Array.init n (fun i ->
      match key.[n - 1 - i] with
      | '-' -> -1
      | '0' -> 0
      | '1' -> 1
      | c -> invalid_arg (Printf.sprintf "Engine.classical_of_key: '%c'" c))

(* --- instrumentation --------------------------------------------------- *)

type tally = { applies : (string, int) Hashtbl.t; mutable measures : int }

let fresh_tally () = { applies = Hashtbl.create 16; measures = 0 }

let count_apply tally name =
  Hashtbl.replace tally.applies name
    (1 + Option.value ~default:0 (Hashtbl.find_opt tally.applies name))

let gate_applies_of tally =
  Hashtbl.fold (fun name count acc -> (name, count) :: acc) tally.applies []
  |> List.sort (fun (na, a) (nb, b) ->
         match compare b a with 0 -> compare na nb | c -> c)

(* --- run-plan analysis ------------------------------------------------- *)

(* A circuit takes the single-pass sampled plan when its measurements are
   terminal and unconditioned: a unitary prefix (leading preps on untouched
   qubits are no-ops on |0...0> and allowed), then only measure/barrier
   instructions. Anything stochastic mid-circuit forces trajectories. *)
let classify_structure circuit =
  let n = Circuit.qubit_count circuit in
  let touched = Array.make n false in
  let measured = Array.make n false in
  let seen_measure = ref false in
  let verdict = ref None in
  let fail reason = if !verdict = None then verdict := Some reason in
  List.iter
    (fun instr ->
      if !verdict = None then
        match instr with
        | Gate.Unitary (_, ops) ->
            if !seen_measure then fail "gate after measurement (mid-circuit measurement)"
            else Array.iter (fun q -> touched.(q) <- true) ops
        | Gate.Conditional _ -> fail "conditional (feedback) gate"
        | Gate.Prep q ->
            if !seen_measure then fail "prep after measurement (mid-circuit reset)"
            else if touched.(q) then fail "mid-circuit prep (reset of a live qubit)"
        | Gate.Measure q ->
            seen_measure := true;
            measured.(q) <- true
        | Gate.Barrier _ -> ())
    (Circuit.instructions circuit);
  match !verdict with
  | Some reason -> (Trajectory, reason, measured)
  | None -> (Sampled, "terminal unconditioned measurements", measured)

(* Total Clifford classification (no exception probing): the first gate the
   tableau cannot simulate, with its instruction index, or [None] when the
   whole circuit is Clifford. *)
let clifford_blocker circuit =
  let rec scan index = function
    | [] -> None
    | instr :: rest -> (
        match instr with
        | Gate.Unitary (u, _) | Gate.Conditional (_, u, _) ->
            if Tableau.supports u then scan (index + 1) rest
            else Some (Gate.name u, index)
        | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ -> scan (index + 1) rest)
  in
  scan 0 (Circuit.instructions circuit)

(* The state-vector layer refuses circuits beyond this width; the tableau
   goes to 4096 qubits, so above it the Clifford plan is the only option. *)
let sv_max_qubits = 30

let count_work circuit =
  let gates = ref 0 and measures = ref 0 in
  List.iter
    (fun instr ->
      match instr with
      | Gate.Unitary _ | Gate.Conditional _ -> incr gates
      | Gate.Measure _ | Gate.Prep _ -> incr measures
      | Gate.Barrier _ -> ())
    (Circuit.instructions circuit);
  (!gates, !measures)

(* Cost model for all-Clifford circuits that would otherwise take the
   single-pass sampled plan: the sampled plan pays one state-vector
   evolution (gates * 2^n amplitude sweeps) plus shots * n sampling, the
   tableau pays per shot — gates * O(n) row updates plus measures * O(n^2)
   rowsum work. The constants are coarse; the decision only has to be right
   about orders of magnitude (the crossover is near n = 21 at 1024 shots). *)
let clifford_wins ~n ~gates ~measures ~shots =
  n > sv_max_qubits
  || begin
       let fn = float_of_int n in
       let dim = ldexp 1.0 n in
       let sampled = (float_of_int gates *. dim) +. (float_of_int shots *. fn) in
       let tableau =
         float_of_int shots
         *. ((2.0 *. fn *. float_of_int gates)
            +. (4.0 *. fn *. fn *. float_of_int (max 1 measures)))
       in
       tableau < sampled
     end

(* The planner's decision table (docs/engine.md): noise forces trajectories;
   an all-Clifford circuit goes to the tableau when its structure would
   force trajectories (mid-circuit measurement, feedback, resets — the big
   win: per-shot cost drops from O(gates * 2^n) to O(poly n)) or when the
   cost model says the state vector is more expensive (wide terminal
   circuits); otherwise the sampled/trajectory structure analysis stands. *)
let choose_auto ~noise ~shots circuit =
  if not (Noise.is_ideal noise) then (Trajectory, "stochastic noise model", [||])
  else
    let structure, structure_reason, measured = classify_structure circuit in
    match clifford_blocker circuit with
    | Some _ -> (structure, structure_reason, measured)
    | None -> (
        let n = Circuit.qubit_count circuit in
        let gates, measures = count_work circuit in
        match structure with
        | Trajectory ->
            (Clifford, "all-Clifford gates; " ^ structure_reason, measured)
        | Sampled ->
            if clifford_wins ~n ~gates ~measures ~shots then
              ( Clifford,
                Printf.sprintf
                  "all-Clifford gates; tableau cheaper than the 2^%d-amplitude \
                   state vector"
                  n,
                measured )
            else (Sampled, structure_reason, measured)
        | Clifford -> assert false)

let analyse ?(noise = Noise.ideal) ?(shots = 1024) circuit =
  let plan, reason, _ = choose_auto ~noise ~shots circuit in
  (plan, reason)

let structure circuit =
  let plan, reason, _ = classify_structure circuit in
  (plan, reason)

let terminal_split circuit =
  match classify_structure circuit with
  | (Trajectory | Clifford), _, _ -> None
  | Sampled, _, measured ->
      let prefix =
        List.filter
          (fun instr -> match instr with Gate.Unitary _ -> true | _ -> false)
          (Circuit.instructions circuit)
      in
      Some (prefix, measured)

(* --- gate fusion ------------------------------------------------------- *)

(* The fusion pre-pass folds adjacent unitaries into fused kernels:
   maximal runs of consecutive diagonal gates (any operands) become one
   diagonal sweep, and runs of single-qubit gates on the same qubit become
   one pair sweep. Fused kernels keep each gate's specialised arithmetic
   (see State), so a fused run is bit-identical to the unfused sequence —
   fusion is a pure traversal-order optimisation. Runs never cross
   measurements, preps, conditionals or barriers, and the pass only runs
   when the noise model is ideal (noise is applied after each gate, which
   pins the gate-by-gate schedule). *)

type fused_kernel =
  | Single of Gate.unitary * int array * string
  | Fused_1q of int * State.fused1q_plan * string list
  | Fused_diag of State.diag_plan * string list

type plan_step = Kernel of fused_kernel | Instr of Gate.t

let compile_steps ~fusion instrs =
  let gates_in = ref 0 and kernels = ref 0 and fused_1q = ref 0 and fused_diag = ref 0 in
  let rec take_diag acc = function
    | Gate.Unitary (u, ops) :: rest when Gate.is_diagonal u ->
        take_diag ((u, ops) :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec take_1q q acc = function
    | Gate.Unitary (u, ops) :: rest when Gate.arity u = 1 && ops.(0) = q ->
        take_1q q (u :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let single u ops =
    incr gates_in;
    incr kernels;
    Kernel (Single (u, ops, Gate.name u))
  in
  let rec go acc instrs =
    match instrs with
    | [] -> List.rev acc
    | (Gate.Conditional _ | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _) as instr :: rest
      ->
        go (Instr instr :: acc) rest
    | Gate.Unitary (u, ops) :: rest when not fusion -> go (single u ops :: acc) rest
    | Gate.Unitary (u, ops) :: rest as all -> (
        let diag_run, diag_rest =
          if Gate.is_diagonal u then take_diag [] all else ([], all)
        in
        match diag_run with
        | _ :: _ :: _ ->
            (* Every gate in the run is diagonal, so the plan exists. *)
            let dplan = Option.get (State.diag_plan_of diag_run) in
            gates_in := !gates_in + List.length diag_run;
            incr kernels;
            incr fused_diag;
            let names = List.map (fun (du, _) -> Gate.name du) diag_run in
            go (Kernel (Fused_diag (dplan, names)) :: acc) diag_rest
        | _ ->
            if Gate.arity u = 1 then begin
              let q = ops.(0) in
              match take_1q q [] all with
              | (_ :: _ :: _ as run), rest' ->
                  gates_in := !gates_in + List.length run;
                  incr kernels;
                  incr fused_1q;
                  go
                    (Kernel (Fused_1q (q, State.fused1q_plan_of run, List.map Gate.name run))
                    :: acc)
                    rest'
              | _ -> go (single u ops :: acc) rest
            end
            else go (single u ops :: acc) rest)
  in
  let steps = go [] instrs in
  ( steps,
    {
      gates_in = !gates_in;
      kernels = !kernels;
      fused_1q = !fused_1q;
      fused_diag = !fused_diag;
    } )

let apply_kernel state = function
  | Single (u, ops, _) -> State.apply state u ops
  | Fused_1q (q, p, _) -> State.apply_fused1q state p q
  | Fused_diag (p, _) -> State.apply_diag_plan state p

(* --- the flat micro-program -------------------------------------------- *)

(* The compiled form every executor dispatches over: a flat array of
   micro-ops walked by one indexed loop, instead of re-walking a cons list
   of plan steps per shot. Barriers are dropped at compile time and
   conditional gate names are cached, so the per-shot loop does no list
   traversal and no string construction. *)
type micro_op =
  | M_kernel of fused_kernel
  | M_cond of int * Gate.unitary * int array * string
  | M_prep of int
  | M_measure of int

let compile_micro ~fusion instrs =
  let steps, fstats = compile_steps ~fusion instrs in
  let ops =
    List.filter_map
      (fun step ->
        match step with
        | Kernel k -> Some (M_kernel k)
        | Instr (Gate.Conditional (bit, u, o)) ->
            Some (M_cond (bit, u, o, Gate.name u))
        | Instr (Gate.Prep q) -> Some (M_prep q)
        | Instr (Gate.Measure q) -> Some (M_measure q)
        | Instr (Gate.Barrier _) -> None
        | Instr (Gate.Unitary _) -> assert false)
      steps
  in
  (Array.of_list ops, fstats)

(* --- trajectory executor ----------------------------------------------- *)

(* The canonical per-shot executor (also backing [Sim.run]): one fresh state
   vector per shot, measurement collapse, classical feedback, per-gate
   stochastic noise. *)
let exec_instrumented ?(noise = Noise.ideal) ?tally rng circuit =
  let n = Circuit.qubit_count circuit in
  let state = State.create n in
  let classical = Array.make n (-1) in
  let ideal = Noise.is_ideal noise in
  (* Gate-class counters feed the tracing layer; the [enabled] guard keeps
     the string construction off the disabled hot path. *)
  let record name =
    (match tally with Some t -> count_apply t name | None -> ());
    if Trace.enabled () then Trace.add_counter ("qx.apply." ^ name) 1
  in
  let execute instr =
    match instr with
    | Gate.Unitary (u, ops) ->
        State.apply state u ops;
        record (Gate.name u);
        if not ideal then Noise.after_gate noise state rng u ops
    | Gate.Conditional (bit, u, ops) ->
        if classical.(bit) = 1 then begin
          State.apply state u ops;
          record (Gate.name u);
          if not ideal then Noise.after_gate noise state rng u ops
        end
    | Gate.Prep q ->
        let current = State.measure state rng q in
        if current = 1 then State.apply state Gate.X [| q |];
        if (not ideal) && Rng.bernoulli rng noise.Noise.prep_error then
          State.apply state Gate.X [| q |]
    | Gate.Measure q ->
        let outcome = State.measure state rng q in
        (match tally with Some t -> t.measures <- t.measures + 1 | None -> ());
        if Trace.enabled () then Trace.add_counter "qx.measure" 1;
        classical.(q) <- (if ideal then outcome else Noise.flip_readout noise rng outcome)
    | Gate.Barrier _ -> ()
  in
  List.iter execute (Circuit.instructions circuit);
  (state, classical)

let exec_shot ?noise rng circuit = exec_instrumented ?noise rng circuit

(* Ideal-noise per-shot executor over the compiled (possibly fused)
   micro-program. Consumes randomness exactly where [exec_instrumented]
   does (Prep and Measure only — the program exists only for ideal noise),
   and fused kernels are bit-identical to gate-by-gate application, so
   trajectories match the unfused executor bit for bit. The tally still
   counts every {e logical} gate: fused kernels record each constituent
   gate name. *)
let exec_micro ~tally rng ops n =
  let state = State.create n in
  let classical = Array.make n (-1) in
  let record name =
    count_apply tally name;
    if Trace.enabled () then Trace.add_counter ("qx.apply." ^ name) 1
  in
  for i = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops i with
    | M_kernel k -> (
        apply_kernel state k;
        match k with
        | Single (_, _, name) -> record name
        | Fused_1q (_, _, names) | Fused_diag (_, names) -> List.iter record names)
    | M_cond (bit, u, o, name) ->
        if classical.(bit) = 1 then begin
          State.apply state u o;
          record name
        end
    | M_prep q ->
        let current = State.measure state rng q in
        if current = 1 then State.apply state Gate.X [| q |]
    | M_measure q ->
        let outcome = State.measure state rng q in
        tally.measures <- tally.measures + 1;
        if Trace.enabled () then Trace.add_counter "qx.measure" 1;
        classical.(q) <- outcome
  done;
  classical

(* Clifford-plan executor: the same micro-program, dispatched onto a reused
   tableau ([Tableau.reset] per shot, no allocation). Seeding discipline
   mirrors [State.measure]'s randomness contract exactly: one uniform draw
   per measurement, outcome 1 iff the draw is below P(1). For a random
   stabilizer measurement P(1) is exactly 1/2, so comparing the same draw
   against 0.5 reproduces the state-vector executor's outcome —
   seed-identical histograms across the two plans. Deterministic outcomes
   consume the draw without using it, as [State.measure] also always
   draws. *)
let exec_micro_tableau ~tally rng tab ops =
  Tableau.reset tab;
  let n = Tableau.qubit_count tab in
  let classical = Array.make n (-1) in
  let record name =
    count_apply tally name;
    if Trace.enabled () then Trace.add_counter ("qx.apply." ^ name) 1
  in
  let measure q =
    let draw = Rng.float rng 1.0 in
    Tableau.measure_with tab q ~random_outcome:(fun () ->
        if draw < 0.5 then 1 else 0)
  in
  for i = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops i with
    | M_kernel (Single (u, o, name)) ->
        Tableau.apply_gate tab u o;
        record name
    | M_kernel (Fused_1q _ | Fused_diag _) ->
        (* The Clifford plan compiles with [~fusion:false]. *)
        assert false
    | M_cond (bit, u, o, name) ->
        if classical.(bit) = 1 then begin
          Tableau.apply_gate tab u o;
          record name
        end
    | M_prep q ->
        let current = measure q in
        if current = 1 then Tableau.x tab q
    | M_measure q ->
        let outcome = measure q in
        tally.measures <- tally.measures + 1;
        if Trace.enabled () then Trace.add_counter "qx.measure" 1;
        classical.(q) <- outcome
  done;
  classical

(* --- batched trajectories ---------------------------------------------- *)

(* Shots per claimed chunk when batching across the domain pool: small
   enough that a few hundred shots spread over every domain, large enough
   to amortise chunk claims and per-chunk scratch (one tableau). *)
let shot_chunk = 8

let merge_tally ~into src =
  Hashtbl.iter
    (fun name c ->
      Hashtbl.replace into.applies name
        (c + Option.value ~default:0 (Hashtbl.find_opt into.applies name)))
    src.applies;
  into.measures <- into.measures + src.measures

(* Whether a batch of shots is worth dispatching to the pool: tracing runs
   stay sequential (trace counters are not domain-safe), and trivially
   small batches are not worth the dispatch. *)
let batch_shots shots =
  Parallel.available () && (not (Trace.enabled ())) && shots > shot_chunk

let fold_trajectories ?noise ~rng ~shots ~init ~f circuit =
  let sequential () =
    let acc = ref init in
    for _ = 1 to shots do
      let state, classical = exec_shot ?noise (Rng.split rng) circuit in
      acc := f !acc state classical
    done;
    !acc
  in
  (* Parallel windows keep one in-flight state per shot, so the window is
     bounded by a memory budget as well as the pool width; the fold itself
     runs in shot order, so results are bit-identical to sequential. *)
  let n = Circuit.qubit_count circuit in
  let state_bytes = 16.0 *. ldexp 1.0 n in
  let window =
    let budget = 268_435_456.0 (* 256 MB of in-flight states *) in
    let cap = int_of_float (Float.min 4096.0 (Float.max 1.0 (budget /. state_bytes))) in
    min (4 * Parallel.domain_count ()) cap
  in
  if (not (batch_shots shots)) || window < 2 then sequential ()
  else begin
    let acc = ref init in
    let done_ = ref 0 in
    while !done_ < shots do
      let w = min window (shots - !done_) in
      let streams = Rng.streams rng w in
      let results = Array.make w None in
      Parallel.for_tasks ~chunk:1 w (fun lo hi ->
          for i = lo to hi - 1 do
            let state, classical = exec_shot ?noise streams.(i) circuit in
            results.(i) <- Some (state, classical)
          done);
      Array.iter
        (function
          | Some (state, classical) -> acc := f !acc state classical
          | None -> assert false)
        results;
      done_ := !done_ + w
    done;
    !acc
  end

let sorted_histogram table =
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* Engine-level fault injection models the whole backend hiccuping for one
   shot (Fault.Backend_transient); finer-grained sites live in the
   micro-architecture controller. A shot lost after [policy.max_retries]
   re-attempts is counted in [counters.faulted_shots] and excluded from the
   histogram. *)
let inject_backend_fault faults ~site =
  match faults with
  | Some f when Fault.fires f Fault.Backend_transient ->
      Qerror.fail ~transient:true ~site
        (Qerror.Backend_transient "injected backend fault")
  | Some _ | None -> ()

(* Per-shot derived RNG streams: one [Rng.split] per shot, taken in shot
   order from the caller's generator. The derivation consumes the parent
   stream exactly once per shot whether shots execute sequentially, across
   the domain pool, or split over service slices, so the histogram is
   independent of the execution geometry (the PR 4 bit-identity
   discipline). [make_exec] is a per-chunk executor factory: each chunk
   builds its own scratch (a tableau for the Clifford plan, nothing for the
   state-vector plans) and its own tally, merged under a lock — counts are
   sums, so the merge order cannot change the report. The histogram is
   tallied from a keys array in shot order, keeping even hash-table
   iteration order identical to a sequential run. *)
let run_trajectory ?(faults = None) ~policy ~counters ~tally ~make_exec ~rng
    ~shots () =
  let table = Hashtbl.create 64 in
  let record key =
    Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  (match faults with
  | None ->
      let streams = Rng.streams rng shots in
      let keys = Array.make shots "" in
      if batch_shots shots then begin
        let merge_lock = Mutex.create () in
        Parallel.for_tasks ~chunk:shot_chunk shots (fun lo hi ->
            let local = fresh_tally () in
            let exec = make_exec () in
            for i = lo to hi - 1 do
              keys.(i) <- bitstring (exec local streams.(i))
            done;
            Mutex.lock merge_lock;
            merge_tally ~into:tally local;
            Mutex.unlock merge_lock)
      end
      else begin
        let exec = make_exec () in
        for i = 0 to shots - 1 do
          keys.(i) <- bitstring (exec tally streams.(i))
        done
      end;
      Array.iter record keys
  | Some _ ->
      (* Fault injection retries shots, so the attempt order is
         data-dependent: this path stays sequential. Each attempt draws a
         fresh derived stream, so an injector that never fires is
         bit-identical to the no-injector run. *)
      let exec = make_exec () in
      for _ = 1 to shots do
        let shot () =
          inject_backend_fault faults ~site:"Engine.run_trajectory";
          exec tally (Rng.split rng)
        in
        match Resilience.with_retries policy counters shot with
        | Ok classical -> record (bitstring classical)
        | Error _ -> counters.Resilience.faulted_shots <- counters.Resilience.faulted_shots + 1
      done);
  sorted_histogram table

(* Sampled-plan equivalent: decide per-shot survival up front (a backend
   fault costs the shot, not the single-pass simulation), then draw only the
   surviving shots from the final distribution. *)
let surviving_shots ?(faults = None) ~policy ~counters shots =
  match faults with
  | None -> shots
  | Some _ ->
      let ok = ref 0 in
      for _ = 1 to shots do
        match
          Resilience.with_retries policy counters (fun () ->
              inject_backend_fault faults ~site:"Engine.run_sampled")
        with
        | Ok () -> incr ok
        | Error _ ->
            counters.Resilience.faulted_shots <- counters.Resilience.faulted_shots + 1
      done;
      !ok

(* --- sampled plan ------------------------------------------------------ *)

let sample_histogram ~probabilities ~measured ~rng ~shots =
  let dim = Array.length probabilities in
  let n = Array.length measured in
  let cumulative = Array.make dim 0.0 in
  let acc = ref 0.0 in
  for k = 0 to dim - 1 do
    acc := !acc +. probabilities.(k);
    cumulative.(k) <- !acc
  done;
  let total = !acc in
  let sample () =
    let target = Rng.float rng total in
    let lo = ref 0 and hi = ref (dim - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) > target then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let mmask =
    let m = ref 0 in
    Array.iteri (fun q yes -> if yes then m := !m lor (1 lsl q)) measured;
    !m
  in
  let counts = Hashtbl.create 64 in
  for _ = 1 to shots do
    let k = sample () land mmask in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let key_of k =
    String.init n (fun i ->
        let q = n - 1 - i in
        if measured.(q) then if k land (1 lsl q) <> 0 then '1' else '0' else '-')
  in
  Hashtbl.fold (fun k count acc -> (key_of k, count) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let run_sampled ~tally rng ~shots ~measured ~ops circuit =
  (* [shots] here is the surviving-shot count (faults already applied). *)
  let n = Circuit.qubit_count circuit in
  let state = State.create n in
  let record name =
    count_apply tally name;
    if Trace.enabled () then Trace.add_counter ("qx.apply." ^ name) 1
  in
  let sim_sp = Trace.begin_span "engine.simulate" in
  Array.iter
    (fun op ->
      match op with
      | M_kernel k -> (
          apply_kernel state k;
          match k with
          | Single (_, _, name) -> record name
          | Fused_1q (_, _, names) | Fused_diag (_, names) -> List.iter record names)
      | M_prep _ | M_measure _ -> ()
      | M_cond _ -> invalid_arg "Engine: conditional gate in sampled plan")
    ops;
  Trace.annotate sim_sp (fun () ->
      [ ("gate_applies", Trace.Int (Hashtbl.fold (fun _ c acc -> acc + c) tally.applies 0)) ]);
  Trace.end_span sim_sp;
  let t_sim = Sys.time () in
  let histogram =
    Trace.with_span "engine.sample" (fun sample_sp ->
        Trace.annotate sample_sp (fun () -> [ ("shots", Trace.Int shots) ]);
        sample_histogram ~probabilities:(State.probabilities state) ~measured ~rng ~shots)
  in
  let measured_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 measured in
  tally.measures <- shots * measured_count;
  if Trace.enabled () then Trace.add_counter "qx.measure" tally.measures;
  (histogram, t_sim)

(* --- shared sampled-plan distribution ---------------------------------- *)

type sampled_distribution = {
  probabilities : float array;
  dist_measured : bool array;
  dist_fusion : fusion_stats;
  dist_gate_applies : (string * int) list;
}

let sampled_distribution ?(fusion = true) circuit =
  match classify_structure circuit with
  | (Trajectory | Clifford), _, _ -> None
  | Sampled, _, measured ->
      let ops, fstats = compile_micro ~fusion (Circuit.instructions circuit) in
      let tally = fresh_tally () in
      let state = State.create (Circuit.qubit_count circuit) in
      Array.iter
        (fun op ->
          match op with
          | M_kernel k -> (
              apply_kernel state k;
              match k with
              | Single (_, _, name) -> count_apply tally name
              | Fused_1q (_, _, names) | Fused_diag (_, names) ->
                  List.iter (count_apply tally) names)
          | M_cond _ | M_prep _ | M_measure _ -> ())
        ops;
      Some
        {
          probabilities = State.probabilities state;
          dist_measured = measured;
          dist_fusion = fstats;
          dist_gate_applies = gate_applies_of tally;
        }

(* --- the run surface --------------------------------------------------- *)

let run ?(noise = Noise.ideal) ?seed ?rng ?plan ?(shots = 1024) ?faults
    ?(policy = Resilience.default_policy) ?(fusion = true) circuit =
  if shots < 1 then invalid_arg "Engine.run: shots must be positive";
  Trace.with_span "engine.run" (fun run_sp ->
  let counters = Resilience.fresh_counters () in
  let t0 = Sys.time () in
  let analyse_sp = Trace.begin_span "engine.analyse" in
  let chosen, reason, measured =
    match plan with
    | None -> choose_auto ~noise ~shots circuit
    | Some Trajectory -> (Trajectory, "trajectory plan forced by caller", [||])
    | Some Sampled -> (
        if not (Noise.is_ideal noise) then
          invalid_arg
            "Engine.run: sampled plan forced but circuit needs trajectories: \
             stochastic noise model";
        match classify_structure circuit with
        | Sampled, _, measured -> (Sampled, "sampled plan forced by caller", measured)
        | Trajectory, r, _ ->
            invalid_arg ("Engine.run: sampled plan forced but circuit needs trajectories: " ^ r)
        | Clifford, _, _ -> assert false)
    | Some Clifford -> (
        if not (Noise.is_ideal noise) then
          Qerror.fail ~site:"Engine.run"
            (Qerror.Invalid
               "clifford plan forced but the noise model is stochastic (the \
                tableau simulates ideal Clifford circuits only)");
        match clifford_blocker circuit with
        | Some (gate, index) ->
            Qerror.fail ~site:"Engine.run"
              ~context:[ ("gate", gate); ("index", string_of_int index) ]
              (Qerror.Invalid "clifford plan forced on a non-Clifford circuit")
        | None -> (Clifford, "clifford plan forced by caller", [||]))
  in
  Trace.annotate analyse_sp (fun () ->
      [ ("plan", Trace.String (plan_to_string chosen)); ("reason", Trace.String reason) ]);
  Trace.end_span analyse_sp;
  Trace.annotate run_sp (fun () ->
      [
        ("plan", Trace.String (plan_to_string chosen));
        ("shots", Trace.Int shots);
        ("qubits", Trace.Int (Circuit.qubit_count circuit));
        ("instructions", Trace.Int (Circuit.length circuit));
      ]);
  let rng = resolve_rng seed rng in
  (* Fusion pre-pass: only for ideal noise (per-gate stochastic noise pins
     the gate-by-gate schedule). [~fusion:false] still compiles — into
     single-gate kernels — so both paths run the same executor. *)
  let ideal = Noise.is_ideal noise in
  (* The Clifford plan feeds every kernel to the tableau one gate at a time,
     so it compiles unfused (fused kernels carry state-vector plans). *)
  let fusion = fusion && chosen <> Clifford in
  let prog, fstats =
    if ideal then
      Trace.with_span "engine.fuse" (fun fuse_sp ->
          let ops, stats = compile_micro ~fusion (Circuit.instructions circuit) in
          Trace.annotate fuse_sp (fun () ->
              [
                ("fusion", Trace.Bool fusion);
                ("gates_in", Trace.Int stats.gates_in);
                ("kernels", Trace.Int stats.kernels);
                ("fused_1q", Trace.Int stats.fused_1q);
                ("fused_diag", Trace.Int stats.fused_diag);
              ]);
          if Trace.enabled () then begin
            Trace.add_counter "qx.fusion.gates_in" stats.gates_in;
            Trace.add_counter "qx.fusion.kernels" stats.kernels
          end;
          (Some ops, stats))
    else (None, no_fusion)
  in
  let t1 = Sys.time () in
  let tally = fresh_tally () in
  let simulate make_exec =
    Trace.with_span "engine.simulate" (fun sim_sp ->
        Trace.annotate sim_sp (fun () ->
            [
              ("plan", Trace.String (plan_to_string chosen));
              ("trajectories", Trace.Int shots);
            ]);
        run_trajectory ~faults ~policy ~counters ~tally ~make_exec ~rng ~shots ())
  in
  let histogram, t_sample_start =
    match chosen with
    | Sampled ->
        let survivors = surviving_shots ~faults ~policy ~counters shots in
        run_sampled ~tally rng ~shots:survivors ~measured ~ops:(Option.get prog) circuit
    | Trajectory ->
        let n = Circuit.qubit_count circuit in
        let make_exec =
          match prog with
          | Some ops -> fun () t r -> exec_micro ~tally:t r ops n
          | None -> fun () t r -> snd (exec_instrumented ~noise ~tally:t r circuit)
        in
        (simulate make_exec, Sys.time ())
    | Clifford ->
        let n = Circuit.qubit_count circuit in
        let ops = Option.get prog in
        let make_exec () =
          let tab = Tableau.create n in
          fun t r -> exec_micro_tableau ~tally:t r tab ops
        in
        (simulate make_exec, Sys.time ())
  in
  let t2 = Sys.time () in
  let resilience =
    match faults with
    | None -> no_resilience
    | Some f ->
        {
          faults_injected = Fault.counts f;
          retries = counters.Resilience.retries;
          faulted_shots = counters.Resilience.faulted_shots;
          backoff_ns = counters.Resilience.backoff_total_ns;
          degraded = None;
        }
  in
  Trace.annotate run_sp (fun () ->
      match faults with
      | None -> []
      | Some _ ->
          [
            ("faulted_shots", Trace.Int resilience.faulted_shots);
            ("retries", Trace.Int resilience.retries);
          ]);
  {
    histogram;
    report =
      {
        plan = chosen;
        plan_reason = reason;
        shots;
        seed;
        qubit_count = Circuit.qubit_count circuit;
        instruction_count = Circuit.length circuit;
        gate_applies = gate_applies_of tally;
        measurements = tally.measures;
        wall =
          {
            analyse_s = t1 -. t0;
            simulate_s = t_sample_start -. t1;
            sample_s = t2 -. t_sample_start;
          };
        resilience;
        fusion = fstats;
        cache = no_cache;
      };
  })

let run_checked ?noise ?seed ?rng ?plan ?shots ?faults ?policy ?fusion circuit =
  Qerror.protect ~site:"Engine.run" (fun () ->
      run ?noise ?seed ?rng ?plan ?shots ?faults ?policy ?fusion circuit)

let success_probability result ~accept =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 result.histogram in
  if total = 0 then 0.0
  else
    let hits =
      List.fold_left
        (fun acc (key, c) -> if accept (classical_of_key key) then acc + c else acc)
        0 result.histogram
    in
    float_of_int hits /. float_of_int total

(* --- metrics as JSON --------------------------------------------------- *)

let json_escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let report_to_json r =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "{\"plan\":\"%s\",\"plan_reason\":\"%s\",\"shots\":%d,\"seed\":%s,"
       (plan_to_string r.plan) (json_escape r.plan_reason) r.shots
       (match r.seed with Some s -> string_of_int s | None -> "null"));
  Buffer.add_string buffer
    (Printf.sprintf "\"qubits\":%d,\"instructions\":%d,\"measurements\":%d,"
       r.qubit_count r.instruction_count r.measurements);
  Buffer.add_string buffer "\"gate_applies\":{";
  List.iteri
    (fun i (name, count) ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (Printf.sprintf "\"%s\":%d" (json_escape name) count))
    r.gate_applies;
  Buffer.add_string buffer "},";
  Buffer.add_string buffer
    (Printf.sprintf
       "\"wall_s\":{\"analyse\":%.6f,\"simulate\":%.6f,\"sample\":%.6f},"
       r.wall.analyse_s r.wall.simulate_s r.wall.sample_s);
  (* Every counter family lives under one stable "counters" object (the
     metrics schema in docs/engine.md): fusion, fault/retry and cache. *)
  Buffer.add_string buffer "\"counters\":{";
  Buffer.add_string buffer
    (Printf.sprintf
       "\"fusion\":{\"gates_in\":%d,\"kernels\":%d,\"fused_1q\":%d,\"fused_diag\":%d},"
       r.fusion.gates_in r.fusion.kernels r.fusion.fused_1q r.fusion.fused_diag);
  Buffer.add_string buffer "\"resilience\":{\"faults\":{";
  List.iteri
    (fun i (site, count) ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (Printf.sprintf "\"%s\":%d" (json_escape site) count))
    r.resilience.faults_injected;
  Buffer.add_string buffer
    (Printf.sprintf "},\"retries\":%d,\"faulted_shots\":%d,\"backoff_ns\":%d,\"degraded\":%s},"
       r.resilience.retries r.resilience.faulted_shots r.resilience.backoff_ns
       (match r.resilience.degraded with
       | Some why -> "\"" ^ json_escape why ^ "\""
       | None -> "null"));
  Buffer.add_string buffer
    (Printf.sprintf "\"cache\":{\"hits\":%d,\"shared\":%d}}}" r.cache.cache_hits
       r.cache.cache_shared);
  Buffer.contents buffer
