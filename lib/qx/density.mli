(** Density-matrix simulator: exact open-system evolution for small
    registers (n <= 8).

    Where {!Sim} samples Monte-Carlo trajectories, this module evolves the
    density matrix rho directly: unitaries as U rho U+, error channels as
    exact Kraus sums. It exists to validate the trajectory engine (the test
    suite checks the two agree) and to compute noise-limited quantities
    without sampling error. *)

type t

val create : int -> t
(** |0...0><0...0| on n qubits (1 <= n <= 8). *)

val qubit_count : t -> int
val dimension : t -> int

val of_state : State.t -> t
(** Pure-state density matrix |psi><psi|. *)

val get : t -> int -> int -> Qca_util.Cplx.t
(** Matrix element rho_{row,col}. *)

val trace : t -> float
(** Always ~1 for a valid state. *)

val purity : t -> float
(** Tr rho^2: 1 for pure states, 1/2^n for the maximally mixed state. *)

val apply_unitary : t -> Qca_circuit.Gate.unitary -> int array -> unit

val apply_channel : t -> Noise.channel -> int -> unit
(** Exact Kraus-sum application of a single-qubit channel. *)

val probabilities : t -> float array
(** Diagonal: the measurement distribution. *)

val prob_one : t -> int -> float

val fidelity_with_state : t -> State.t -> float
(** <psi| rho |psi>. *)

val expectation_diag : t -> (int -> float) -> float

val run : ?noise:Noise.model -> Qca_circuit.Circuit.t -> t
(** Evolve a circuit exactly under the error model (gates followed by
    depolarising + decoherence channels on their operands, as in {!Sim}).
    Measurement, preparation and conditional instructions are rejected —
    use the trajectory simulator for those. *)

val backend : ?noise:Noise.model -> unit -> (module Backend.S)
(** A density-matrix execution target with a fixed noise model baked in
    (channels applied as exact Kraus sums, no trajectory sampling). *)

module Backend : Backend.S
(** Exact density-matrix execution target ("qx-density"): evolves rho
    through the unitary prefix and samples terminal measurements from its
    diagonal. Raises [Invalid_argument] for circuits that need trajectory
    execution (feedback, mid-circuit measurement/reset) or more than 8
    qubits. *)
