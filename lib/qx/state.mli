(** State-vector backend of the QX simulator.

    Amplitudes are stored little-endian: qubit 0 is the least-significant bit
    of the basis index, matching {!Qca_circuit.Circuit.unitary_matrix}.

    {2 The kernel layer}

    Every gate is dispatched to a mask-specialised kernel: single-qubit
    phases touch only the dim/2 affected amplitudes, controlled gates
    enumerate only their control-set subspace (dim/4 for CNOT/CZ, dim/8
    for Toffoli), and Rz is a single branching sweep. Element-wise kernels
    run on the {!Qca_util.Parallel} domain pool when the state is at or
    above [Parallel.threshold_qubits] — with fixed chunk boundaries, so
    parallel results are bit-identical to sequential ones. Fused kernels
    ({!apply_fused1q}, {!apply_diag_plan}) execute a run of gates in one
    sweep and are bit-identical to applying the run gate by gate (loop
    fusion: same floating-point operations in the same per-element order).
    See [docs/performance.md]. *)

type t

val create : int -> t
(** [create n] is |0...0> on [n] qubits. Raises for n < 1 or n > 30. *)

val qubit_count : t -> int
val dimension : t -> int

val copy : t -> t

val of_amplitudes : Qca_util.Cplx.t array -> t
(** Length must be a power of two; the vector is normalised on entry. *)

val amplitude : t -> int -> Qca_util.Cplx.t

val probabilities : t -> float array
(** Full measurement distribution (length [dimension]). *)

val probability_of : t -> int -> float
(** Probability of one basis state. *)

val norm : t -> float
(** 2-norm (1.0 for a valid state). *)

val normalize : t -> unit

val apply : t -> Qca_circuit.Gate.unitary -> int array -> unit
(** Apply a gate in place; operands as in {!Qca_circuit.Gate.t}. *)

val apply_matrix1 : t -> Qca_util.Matrix.t -> int -> unit
(** Apply an arbitrary 2x2 matrix (not necessarily unitary — used for Kraus
    operators; renormalisation is the caller's concern). *)

val prob_one : t -> int -> float
(** Probability that measuring qubit [q] yields 1. *)

val collapse : t -> int -> int -> unit
(** [collapse s q outcome] projects qubit [q] onto [outcome] (0 or 1) and
    renormalises. The projected branch must have nonzero probability. *)

val measure : t -> Qca_util.Rng.t -> int -> int
(** Sample and collapse one qubit; returns the outcome. *)

val sample_index : t -> Qca_util.Rng.t -> int
(** Sample a basis index from the current distribution without collapsing.
    One draw costs an [O(2^n)] cumulative build plus an [O(n)] binary
    search; for repeated draws from the same state build a {!sampler}. *)

type sampler
(** A cumulative distribution snapshot of a state, for repeated draws. *)

val sampler : t -> sampler
(** Build the cumulative array once ([O(2^n)]). The snapshot does not
    track later mutations of the state. *)

val sampler_draw : sampler -> Qca_util.Rng.t -> int
(** One [O(n)] binary-search draw. [sampler_draw (sampler s) rng] is
    bit-identical to [sample_index s rng] (same RNG consumption, same
    index). *)

val overlap : t -> t -> Qca_util.Cplx.t
(** Inner product <a|b>. *)

val fidelity : t -> t -> float
(** |<a|b>|^2. *)

val expectation_diag : t -> (int -> float) -> float
(** Expectation of a computational-basis-diagonal observable. *)

val expectation_pauli : t -> (int * char) list -> float
(** Expectation of a Pauli string, e.g. [[(0, 'X'); (2, 'Z')]] for X0 Z2.
    Letters X, Y, Z; qubits must be distinct. Leaves the state untouched
    (works on a rotated copy). *)

val apply_diagonal_phase : t -> (int -> float) -> unit
(** Multiply each amplitude k by exp(i * f k) — the efficient path for
    diagonal cost Hamiltonians (QAOA phase separation). *)

val apply_permutation : t -> (int -> int) -> unit
(** Classical reversible function as a basis permutation: amplitude of |x>
    moves to |f x|. [f] must be a bijection on the basis range (checked). *)

val apply_controlled_permutation : t -> control:int -> (int -> int) -> unit
(** Apply the permutation only on basis states whose [control] bit is 1;
    [f] must fix the control bit and be a bijection on that subspace —
    the controlled-U_a^2^k building block of order finding. *)

val memory_bytes : int -> int
(** Bytes required by a state on [n] qubits (used by the E5 scaling table). *)

(** {2 Fused kernels}

    Building blocks for the engine's gate-fusion pre-pass
    ([Qx.Engine], [docs/performance.md]). Both are {e loop} fusion — the
    amplitude (pair) is loaded once, every gate of the run is applied to
    it in sequence, and it is stored once — so results are bit-identical
    to applying the run gate by gate. *)

type fused1q_plan
(** A compiled run of single-qubit gates on one qubit. Each gate keeps the
    specialised arithmetic of its standalone kernel (X a swap, phases
    touching only the set-bit element, Rz a branch, dense gates the full
    2x2), so the fused sweep is strictly bit-identical to the unfused
    sequence. *)

val fused1q_plan_of : Qca_circuit.Gate.unitary list -> fused1q_plan
(** Compile a run of single-qubit gates (application order); identities
    are dropped. *)

val fused1q_gates : fused1q_plan -> int
(** Number of non-identity gates in the plan. *)

val apply_fused1q : t -> fused1q_plan -> int -> unit
(** [apply_fused1q s plan q]: apply the run to qubit [q] in one sweep over
    the amplitude pairs. *)

type diag_plan
(** A coalesced run of computational-basis-diagonal gates, applied to
    every amplitude in a single sweep by {!apply_diag_plan}. *)

val diag_plan_of : (Qca_circuit.Gate.unitary * int array) list -> diag_plan option
(** Compile a gate run (application order, with operands) into a diagonal
    sweep. [None] if any gate is not diagonal; identities are dropped. *)

val diag_plan_terms : diag_plan -> int
(** Number of non-identity terms in the plan. *)

val apply_diag_plan : t -> diag_plan -> unit

(** {2 Seed kernels (benchmark baseline)}

    The pre-kernel-layer gate implementations, kept verbatim so
    [bench kernels] and the runtest perf guard can measure the new
    kernels against them. Not an execution path of the stack. *)
module Reference : sig
  val apply : t -> Qca_circuit.Gate.unitary -> int array -> unit
end
