(** Retry/degradation combinator over the {!Backend.S} contract.

    [wrap ~fallback primary] is a backend that runs [primary], retrying
    transient structured errors per the policy, and degrades to [fallback]
    when the primary either fails outright (a permanent
    {!Qca_util.Error.Error}, or a transient one that survives
    [max_retries]) or completes with a faulted-shot fraction above
    [degrade_threshold]. Degradation is observable, not silent: the
    returned report carries the event in
    {!Engine.resilience.degraded}, and retry/backoff counters are merged
    in. This is the backend-level rung of the degradation ladder described
    in [docs/resilience.md] — e.g. wrapping the cycle-accurate
    micro-architecture backend with the realistic {!Sim.Backend} as
    fallback. *)

val wrap :
  ?policy:Qca_util.Resilience.policy ->
  fallback:(module Backend.S) ->
  (module Backend.S) ->
  (module Backend.S)
(** The wrapped backend is named ["resilient(<primary>-><fallback>)"].
    [policy] defaults to {!Qca_util.Resilience.default_policy}. *)
