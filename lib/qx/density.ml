module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Matrix = Qca_util.Matrix
module Cplx = Qca_util.Cplx
module Trace = Qca_util.Trace

type t = { n : int; mutable rho : Matrix.t }

let create n =
  if n < 1 || n > 8 then invalid_arg "Density.create: qubit count out of range [1, 8]";
  let dim = 1 lsl n in
  { n; rho = Matrix.make dim dim (fun r c -> if r = 0 && c = 0 then Cplx.one else Cplx.zero) }

let qubit_count d = d.n
let dimension d = 1 lsl d.n

let of_state state =
  let n = State.qubit_count state in
  if n > 8 then invalid_arg "Density.of_state: too many qubits";
  let dim = State.dimension state in
  {
    n;
    rho =
      Matrix.make dim dim (fun r c ->
          Cplx.mul (State.amplitude state r) (Cplx.conj (State.amplitude state c)));
  }

let get d r c = Matrix.get d.rho r c

let trace d = Cplx.re (Matrix.trace d.rho)

let purity d = Cplx.re (Matrix.trace (Matrix.mul d.rho d.rho))

(* Embed a k-qubit operator on the given operand qubits into the full space
   (same convention as Circuit.unitary_matrix: operands MSB-first). *)
let embed n small ops =
  let k = Array.length ops in
  let dim = 1 lsl n in
  let mask = Array.fold_left (fun m q -> m lor (1 lsl q)) 0 ops in
  let index_of basis =
    let rec go i acc =
      if i = k then acc
      else go (i + 1) ((acc lsl 1) lor if basis land (1 lsl ops.(i)) <> 0 then 1 else 0)
    in
    go 0 0
  in
  Matrix.make dim dim (fun row col ->
      if row land lnot mask <> col land lnot mask then Cplx.zero
      else Matrix.get small (index_of row) (index_of col))

let apply_operator d full =
  d.rho <- Matrix.mul full (Matrix.mul d.rho (Matrix.adjoint full))

let apply_unitary d u ops =
  if Trace.enabled () then Trace.add_counter ("qx.density.apply." ^ Gate.name u) 1;
  apply_operator d (embed d.n (Gate.matrix u) ops)

let kraus_of_channel channel =
  let c = Cplx.make in
  let scaled s m = Matrix.scale (c s 0.0) m in
  let pauli_x = Gate.matrix Gate.X
  and pauli_y = Gate.matrix Gate.Y
  and pauli_z = Gate.matrix Gate.Z
  and identity = Matrix.identity 2 in
  match channel with
  | Noise.Depolarizing p ->
      [
        scaled (sqrt (1.0 -. p)) identity;
        scaled (sqrt (p /. 3.0)) pauli_x;
        scaled (sqrt (p /. 3.0)) pauli_y;
        scaled (sqrt (p /. 3.0)) pauli_z;
      ]
  | Noise.Bit_flip p -> [ scaled (sqrt (1.0 -. p)) identity; scaled (sqrt p) pauli_x ]
  | Noise.Phase_flip p -> [ scaled (sqrt (1.0 -. p)) identity; scaled (sqrt p) pauli_z ]
  | Noise.Bit_phase_flip p -> [ scaled (sqrt (1.0 -. p)) identity; scaled (sqrt p) pauli_y ]
  | Noise.Amplitude_damping gamma ->
      [
        Matrix.of_arrays
          [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; c (sqrt (1.0 -. gamma)) 0.0 |] |];
        Matrix.of_arrays
          [| [| Cplx.zero; c (sqrt gamma) 0.0 |]; [| Cplx.zero; Cplx.zero |] |];
      ]
  | Noise.Phase_damping lambda ->
      [
        Matrix.of_arrays
          [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; c (sqrt (1.0 -. lambda)) 0.0 |] |];
        Matrix.of_arrays
          [| [| Cplx.zero; Cplx.zero |]; [| Cplx.zero; c (sqrt lambda) 0.0 |] |];
      ]

let apply_channel d channel q =
  let kraus = kraus_of_channel channel in
  let dim = dimension d in
  let acc = ref (Matrix.zero dim dim) in
  List.iter
    (fun k ->
      let full = embed d.n k [| q |] in
      acc := Matrix.add !acc (Matrix.mul full (Matrix.mul d.rho (Matrix.adjoint full))))
    kraus;
  d.rho <- !acc

let probabilities d = Array.init (dimension d) (fun k -> Cplx.re (get d k k))

let prob_one d q =
  let acc = ref 0.0 in
  for k = 0 to dimension d - 1 do
    if k land (1 lsl q) <> 0 then acc := !acc +. Cplx.re (get d k k)
  done;
  !acc

let fidelity_with_state d state =
  (* <psi| rho |psi> *)
  let dim = dimension d in
  let acc = ref Cplx.zero in
  for r = 0 to dim - 1 do
    for c = 0 to dim - 1 do
      acc :=
        Cplx.add !acc
          (Cplx.mul
             (Cplx.conj (State.amplitude state r))
             (Cplx.mul (get d r c) (State.amplitude state c)))
    done
  done;
  Cplx.re !acc

let expectation_diag d f =
  let acc = ref 0.0 in
  for k = 0 to dimension d - 1 do
    acc := !acc +. (f k *. Cplx.re (get d k k))
  done;
  !acc

(* Deterministic analogue of Sim.run's noise insertion: the same channels
   the trajectory sampler draws from, applied as exact Kraus sums. *)
let decay_channels (m : Noise.model) =
  if m.Noise.t1_ns = infinity && m.Noise.t2_ns = infinity then []
  else begin
    let gamma =
      if m.Noise.t1_ns = infinity then 0.0
      else 1.0 -. exp (-.m.Noise.cycle_ns /. m.Noise.t1_ns)
    in
    let t1_rate = if m.Noise.t1_ns = infinity then 0.0 else 1.0 /. (2.0 *. m.Noise.t1_ns) in
    let t2_rate = if m.Noise.t2_ns = infinity then 0.0 else 1.0 /. m.Noise.t2_ns in
    let phi_rate = Float.max 0.0 (t2_rate -. t1_rate) in
    let lambda = 1.0 -. exp (-2.0 *. m.Noise.cycle_ns *. phi_rate) in
    [ Noise.Amplitude_damping gamma; Noise.Phase_damping lambda ]
  end

let after_gate_noise d noise u ops =
  let p =
    if Gate.arity u >= 2 then noise.Noise.two_qubit_error else noise.Noise.single_qubit_error
  in
  Array.iter
    (fun q ->
      if p > 0.0 then apply_channel d (Noise.Depolarizing p) q;
      List.iter (fun ch -> apply_channel d ch q) (decay_channels noise))
    ops

let run ?(noise = Noise.ideal) circuit =
  let n = Circuit.qubit_count circuit in
  let d = create n in
  let ideal = Noise.is_ideal noise in
  List.iter
    (fun instr ->
      match instr with
      | Gate.Unitary (u, ops) ->
          apply_unitary d u ops;
          if not ideal then after_gate_noise d noise u ops
      | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _ ->
          invalid_arg "Density.run: measurement/prep/conditional not supported"
      | Gate.Barrier _ -> ())
    (Circuit.instructions circuit);
  d

(* --- Backend conformance ---------------------------------------------- *)

(* Terminal measurements are sampled from the exact diagonal of rho, so the
   density target serves the same run contract as the trajectory engine
   (and validates it without sampling error in the evolution itself). *)
let run_backend ~noise ?(shots = 1024) ?seed circuit =
  if shots < 1 then invalid_arg "Density.Backend: shots must be positive";
  Trace.with_span "density.run" (fun run_sp ->
  let t0 = Sys.time () in
  match Engine.terminal_split circuit with
  | None ->
      invalid_arg
        "Density.Backend: circuit needs trajectory execution (conditional, \
         mid-circuit measurement or reset)"
  | Some (prefix, measured) ->
      let n = Circuit.qubit_count circuit in
      Trace.annotate run_sp (fun () ->
          [ ("shots", Trace.Int shots); ("qubits", Trace.Int n) ]);
      let d = create n in
      let ideal = Noise.is_ideal noise in
      let applies = Hashtbl.create 16 in
      let t1 = Sys.time () in
      let sim_sp = Trace.begin_span "density.simulate" in
      List.iter
        (fun instr ->
          match instr with
          | Gate.Unitary (u, ops) ->
              apply_unitary d u ops;
              if not ideal then after_gate_noise d noise u ops;
              Hashtbl.replace applies (Gate.name u)
                (1 + Option.value ~default:0 (Hashtbl.find_opt applies (Gate.name u)))
          | _ -> assert false)
        prefix;
      Trace.end_span sim_sp;
      let t2 = Sys.time () in
      let rng =
        match seed with
        | Some s -> Qca_util.Rng.create s
        | None -> Engine.default_rng ()
      in
      let histogram =
        Trace.with_span "density.sample" (fun _ ->
            Engine.sample_histogram ~probabilities:(probabilities d) ~measured ~rng ~shots)
      in
      let t3 = Sys.time () in
      let gate_applies =
        Hashtbl.fold (fun name count acc -> (name, count) :: acc) applies []
        |> List.sort (fun (na, a) (nb, b) ->
               match compare b a with 0 -> compare na nb | c -> c)
      in
      let measured_count =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 measured
      in
      {
        Engine.histogram;
        report =
          {
            Engine.plan = Engine.Sampled;
            plan_reason = "exact density-matrix evolution";
            shots;
            seed;
            qubit_count = n;
            instruction_count = Circuit.length circuit;
            gate_applies;
            measurements = shots * measured_count;
            wall = { Engine.analyse_s = t1 -. t0; simulate_s = t2 -. t1; sample_s = t3 -. t2 };
            resilience = Engine.no_resilience;
            fusion = Engine.no_fusion;
            cache = Engine.no_cache;
          };
      })

let backend ?(noise = Noise.ideal) () =
  (module struct
    let name = if Noise.is_ideal noise then "qx-density" else "qx-density-noisy"
    let run ?shots ?seed circuit = run_backend ~noise ?shots ?seed circuit
  end : Backend.S)

module Backend = struct
  let name = "qx-density"
  let run ?shots ?seed circuit = run_backend ~noise:Noise.ideal ?shots ?seed circuit
end
