module Qerror = Qca_util.Error
module Resilience = Qca_util.Resilience

let with_resilience result f =
  {
    result with
    Engine.report =
      {
        result.Engine.report with
        Engine.resilience = f result.Engine.report.Engine.resilience;
      };
  }

let wrap ?(policy = Resilience.default_policy) ~fallback:(module F : Backend.S)
    (module P : Backend.S) =
  (module struct
    let name = Printf.sprintf "resilient(%s->%s)" P.name F.name

    let run ?(shots = 1024) ?seed circuit =
      let counters = Resilience.fresh_counters () in
      let merge resilience =
        {
          resilience with
          Engine.retries = resilience.Engine.retries + counters.Resilience.retries;
          backoff_ns = resilience.Engine.backoff_ns + counters.Resilience.backoff_total_ns;
        }
      in
      let degrade why =
        let result = F.run ~shots ?seed circuit in
        with_resilience result (fun r -> { (merge r) with Engine.degraded = Some why })
      in
      match
        Resilience.with_retries policy counters (fun () -> P.run ~shots ?seed circuit)
      with
      | Ok result ->
          let faulted = result.Engine.report.Engine.resilience.Engine.faulted_shots in
          let fraction = float_of_int faulted /. float_of_int (max 1 shots) in
          if fraction > policy.Resilience.degrade_threshold then
            degrade
              (Printf.sprintf
                 "%s faulted %.0f%% of shots (threshold %.0f%%); fell back to %s" P.name
                 (100.0 *. fraction)
                 (100.0 *. policy.Resilience.degrade_threshold)
                 F.name)
          else with_resilience result merge
      | Error e ->
          degrade
            (Printf.sprintf "%s failed after %d retries (%s); fell back to %s" P.name
               policy.Resilience.max_retries (Qerror.to_string e) F.name)
      | exception Qerror.Error e ->
          (* Permanent structured error: no point retrying the primary. *)
          degrade
            (Printf.sprintf "%s failed (%s); fell back to %s" P.name (Qerror.to_string e)
               F.name)
  end : Backend.S)
