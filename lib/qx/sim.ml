module Circuit = Qca_circuit.Circuit
module Gate = Qca_circuit.Gate
module Cqasm = Qca_circuit.Cqasm
module Rng = Qca_util.Rng

type outcome = { state : State.t; classical : int array }

let run ?noise ?rng circuit =
  let rng = match rng with Some r -> r | None -> Engine.default_rng () in
  let state, classical = Engine.exec_shot ?noise rng circuit in
  { state; classical }

let noise_of_error_model = function
  | None -> None
  | Some (model, rate) -> begin
      match model with
      | "depolarizing_channel" -> Some (Noise.depolarizing rate)
      | other -> invalid_arg (Printf.sprintf "Sim: unknown error model '%s'" other)
    end

let run_cqasm ?noise ?rng source =
  let program = Cqasm.parse source in
  let noise =
    match noise with
    | Some n -> Some n
    | None -> noise_of_error_model program.Cqasm.error_model
  in
  run ?noise ?rng (Cqasm.flatten program)

let histogram ?noise ?rng ~shots circuit =
  (Engine.run ?noise ?rng ~shots circuit).Engine.histogram

let success_probability ?noise ?rng ~shots ~accept circuit =
  Engine.success_probability (Engine.run ?noise ?rng ~shots circuit) ~accept

let expectation_z ?(noise = Noise.ideal) ?rng circuit q =
  let result = run ~noise ?rng circuit in
  let mask = 1 lsl q in
  State.expectation_diag result.state (fun k -> if k land mask = 0 then 1.0 else -1.0)

let state_fidelity_vs_ideal ~noise ~rng ~shots circuit =
  let reference = (run ~noise:Noise.ideal circuit).state in
  let acc =
    Engine.fold_trajectories ~noise ~rng ~shots ~init:0.0
      ~f:(fun acc state _classical -> acc +. State.fidelity reference state)
      circuit
  in
  acc /. float_of_int shots

let backend ?(noise = Noise.ideal) () =
  (module struct
    let name =
      if Noise.is_ideal noise then "qx-statevector" else "qx-statevector-noisy"

    let run ?shots ?seed circuit = Engine.run ~noise ?shots ?seed circuit
  end : Backend.S)

module Backend = struct
  let name = "qx-statevector"
  let run ?shots ?seed circuit = Engine.run ?shots ?seed circuit
end
