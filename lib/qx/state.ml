module Gate = Qca_circuit.Gate
module Matrix = Qca_util.Matrix
module Cplx = Qca_util.Cplx
module Rng = Qca_util.Rng
module Parallel = Qca_util.Parallel

type t = { qubit_count : int; re : float array; im : float array }

let create n =
  if n < 1 || n > 30 then invalid_arg "State.create: qubit count out of range [1, 30]";
  let dim = 1 lsl n in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  re.(0) <- 1.0;
  { qubit_count = n; re; im }

let qubit_count s = s.qubit_count
let dimension s = Array.length s.re

let copy s = { s with re = Array.copy s.re; im = Array.copy s.im }

let norm s =
  let acc = ref 0.0 in
  for k = 0 to dimension s - 1 do
    acc := !acc +. (s.re.(k) *. s.re.(k)) +. (s.im.(k) *. s.im.(k))
  done;
  sqrt !acc

let normalize s =
  let n = norm s in
  if n <= 0.0 then invalid_arg "State.normalize: zero vector";
  let inv = 1.0 /. n in
  for k = 0 to dimension s - 1 do
    s.re.(k) <- s.re.(k) *. inv;
    s.im.(k) <- s.im.(k) *. inv
  done

let of_amplitudes amplitudes =
  let dim = Array.length amplitudes in
  let n =
    let rec log2 d acc = if d = 1 then acc else log2 (d / 2) (acc + 1) in
    if dim < 2 || dim land (dim - 1) <> 0 then
      invalid_arg "State.of_amplitudes: length must be a power of two >= 2"
    else log2 dim 0
  in
  let s =
    {
      qubit_count = n;
      re = Array.map Cplx.re amplitudes;
      im = Array.map Cplx.im amplitudes;
    }
  in
  normalize s;
  s

let amplitude s k = Cplx.make s.re.(k) s.im.(k)

let probabilities s =
  Array.init (dimension s) (fun k -> (s.re.(k) *. s.re.(k)) +. (s.im.(k) *. s.im.(k)))

let probability_of s k = (s.re.(k) *. s.re.(k)) +. (s.im.(k) *. s.im.(k))

(* --- kernel scheduling -------------------------------------------------- *)

(* Element-wise kernels (disjoint writes per index) go through the domain
   pool above the qubit threshold; [Parallel.for_range]'s fixed chunk
   boundaries keep results bit-identical to sequential runs. Reductions
   (norm, prob_one) and collapse stay sequential: a parallel sum would
   reassociate floating-point additions. *)
let run_range s length f =
  if s.qubit_count >= Parallel.threshold_qubits () then Parallel.for_range length f
  else f 0 length

(* Pair [p] of qubit [q] (with [step = 1 lsl q]) lives at indices
   (i0, i0 + step) where i0 spreads p's bits around bit q. *)
let[@inline] pair_base step p = ((p land (-step)) lsl 1) lor (p land (step - 1))

(* Insert a zero bit at the position of [mask] (a power of two) into [c]. *)
let[@inline] insert_bit mask c = ((c land (-mask)) lsl 1) lor (c land (mask - 1))

(* --- single-qubit kernels ----------------------------------------------- *)

let apply_coeffs1 s ~ar ~ai ~br ~bi ~cr ~ci ~dr ~di q =
  let step = 1 lsl q in
  let re = s.re and im = s.im in
  run_range s (Array.length re lsr 1) (fun lo hi ->
      for p = lo to hi - 1 do
        let i0 = pair_base step p in
        let i1 = i0 lor step in
        let x0r = Array.unsafe_get re i0 and x0i = Array.unsafe_get im i0 in
        let x1r = Array.unsafe_get re i1 and x1i = Array.unsafe_get im i1 in
        Array.unsafe_set re i0 ((ar *. x0r) -. (ai *. x0i) +. (br *. x1r) -. (bi *. x1i));
        Array.unsafe_set im i0 ((ar *. x0i) +. (ai *. x0r) +. (br *. x1i) +. (bi *. x1r));
        Array.unsafe_set re i1 ((cr *. x0r) -. (ci *. x0i) +. (dr *. x1r) -. (di *. x1i));
        Array.unsafe_set im i1 ((cr *. x0i) +. (ci *. x0r) +. (dr *. x1i) +. (di *. x1r))
      done)

let apply_matrix1 s m q =
  assert (Matrix.rows m = 2 && Matrix.cols m = 2);
  let a = Matrix.get m 0 0 and b = Matrix.get m 0 1 in
  let c = Matrix.get m 1 0 and d = Matrix.get m 1 1 in
  apply_coeffs1 s ~ar:(Cplx.re a) ~ai:(Cplx.im a) ~br:(Cplx.re b) ~bi:(Cplx.im b)
    ~cr:(Cplx.re c) ~ci:(Cplx.im c) ~dr:(Cplx.re d) ~di:(Cplx.im d) q

let apply_x s q =
  let step = 1 lsl q in
  let re = s.re and im = s.im in
  run_range s (Array.length re lsr 1) (fun lo hi ->
      for p = lo to hi - 1 do
        let i0 = pair_base step p in
        let i1 = i0 lor step in
        let tr = Array.unsafe_get re i0 and ti = Array.unsafe_get im i0 in
        Array.unsafe_set re i0 (Array.unsafe_get re i1);
        Array.unsafe_set im i0 (Array.unsafe_get im i1);
        Array.unsafe_set re i1 tr;
        Array.unsafe_set im i1 ti
      done)

(* Multiply the amplitudes whose bit [q] is set by (pr + i pi): visits only
   the dim/2 affected amplitudes instead of predicate-scanning all of them. *)
let apply_phase1 s q pr pi =
  let step = 1 lsl q in
  let re = s.re and im = s.im in
  run_range s (Array.length re lsr 1) (fun lo hi ->
      for p = lo to hi - 1 do
        let k = pair_base step p lor step in
        let r = Array.unsafe_get re k and i = Array.unsafe_get im k in
        Array.unsafe_set re k ((r *. pr) -. (i *. pi));
        Array.unsafe_set im k ((r *. pi) +. (i *. pr))
      done)

(* Rz = diag(c - i s on |0>, c + i s on |1>): one sweep, branching on the
   bit, instead of two predicate-scanned passes. Bit-identical to the two
   passes — each amplitude sees exactly one complex multiply either way. *)
let apply_rz1 s q ~c ~si =
  let mask = 1 lsl q in
  let nsi = -.si in
  let re = s.re and im = s.im in
  run_range s (Array.length re) (fun lo hi ->
      for k = lo to hi - 1 do
        let r = Array.unsafe_get re k and i = Array.unsafe_get im k in
        if k land mask <> 0 then begin
          Array.unsafe_set re k ((r *. c) -. (i *. si));
          Array.unsafe_set im k ((r *. si) +. (i *. c))
        end
        else begin
          Array.unsafe_set re k ((r *. c) -. (i *. nsi));
          Array.unsafe_set im k ((r *. nsi) +. (i *. c))
        end
      done)

(* --- two- and three-qubit kernels --------------------------------------- *)

(* Multiply amplitudes with both bits set by (pr + i pi), enumerating only
   the dim/4 such amplitudes (the seed kernel predicate-scanned all dim). *)
let apply_phase2 s qa qb pr pi =
  if qa = qb then apply_phase1 s qa pr pi
  else begin
    let ma = 1 lsl qa and mb = 1 lsl qb in
    let m_lo = min ma mb and m_hi = max ma mb in
    let both = ma lor mb in
    let re = s.re and im = s.im in
    run_range s (Array.length re lsr 2) (fun lo hi ->
        for c = lo to hi - 1 do
          let k = insert_bit m_hi (insert_bit m_lo c) lor both in
          let r = Array.unsafe_get re k and i = Array.unsafe_get im k in
          Array.unsafe_set re k ((r *. pr) -. (i *. pi));
          Array.unsafe_set im k ((r *. pi) +. (i *. pr))
        done)
  end

(* Swap the target pair only in the control-set subspace: dim/4 pairs
   visited, versus the seed kernel's dim/2 pairs with a branch. *)
let apply_cnot s control target =
  if control <> target then begin
    let cmask = 1 lsl control and tmask = 1 lsl target in
    let m_lo = min cmask tmask and m_hi = max cmask tmask in
    let re = s.re and im = s.im in
    run_range s (Array.length re lsr 2) (fun lo hi ->
        for c = lo to hi - 1 do
          let i0 = insert_bit m_hi (insert_bit m_lo c) lor cmask in
          let i1 = i0 lor tmask in
          let tr = Array.unsafe_get re i0 and ti = Array.unsafe_get im i0 in
          Array.unsafe_set re i0 (Array.unsafe_get re i1);
          Array.unsafe_set im i0 (Array.unsafe_get im i1);
          Array.unsafe_set re i1 tr;
          Array.unsafe_set im i1 ti
        done)
  end

(* Swap amplitudes for 01 <-> 10 patterns, visiting each pair once (dim/4
   iterations instead of a full predicate scan). *)
let apply_swap s q1 q2 =
  if q1 <> q2 then begin
    let m1 = 1 lsl q1 and m2 = 1 lsl q2 in
    let m_lo = min m1 m2 and m_hi = max m1 m2 in
    let re = s.re and im = s.im in
    run_range s (Array.length re lsr 2) (fun lo hi ->
        for c = lo to hi - 1 do
          let k = insert_bit m_hi (insert_bit m_lo c) lor m1 in
          let j = k lxor m1 lxor m2 in
          let tr = Array.unsafe_get re k and ti = Array.unsafe_get im k in
          Array.unsafe_set re k (Array.unsafe_get re j);
          Array.unsafe_set im k (Array.unsafe_get im j);
          Array.unsafe_set re j tr;
          Array.unsafe_set im j ti
        done)
  end

(* Target-pair swap in the both-controls-set subspace: dim/8 pairs. *)
let apply_toffoli s c1 c2 target =
  if c1 = target || c2 = target then ()
  else if c1 = c2 then apply_cnot s c1 target
  else begin
    let m1 = 1 lsl c1 and m2 = 1 lsl c2 and tmask = 1 lsl target in
    let m_a = min m1 (min m2 tmask) in
    let m_c = max m1 (max m2 tmask) in
    let m_b = m1 lxor m2 lxor tmask lxor m_a lxor m_c in
    let cc = m1 lor m2 in
    let re = s.re and im = s.im in
    run_range s (Array.length re lsr 3) (fun lo hi ->
        for c = lo to hi - 1 do
          let i0 = insert_bit m_c (insert_bit m_b (insert_bit m_a c)) lor cc in
          let i1 = i0 lor tmask in
          let tr = Array.unsafe_get re i0 and ti = Array.unsafe_get im i0 in
          Array.unsafe_set re i0 (Array.unsafe_get re i1);
          Array.unsafe_set im i0 (Array.unsafe_get im i1);
          Array.unsafe_set re i1 tr;
          Array.unsafe_set im i1 ti
        done)
  end

(* --- fused kernels ------------------------------------------------------ *)

(* T's phase, hoisted out of the apply path (the seed kernel recomputed
   cos/sin of pi/4 on every call). *)
let t_phase_re = cos (Float.pi /. 4.0)
let t_phase_im = sin (Float.pi /. 4.0)

(* A run of single-qubit gates on one qubit, applied per amplitude pair:
   the pair is loaded once, rotated through every gate of the run in
   sequence, and stored once. Each gate keeps the {e same} specialised
   arithmetic as its standalone kernel (X is a register swap, Z/S/T touch
   only the set-bit element, Rz branches, dense gates use the full 2x2),
   so the fused sweep is bit-identical to applying the run gate by gate —
   loop fusion, not matrix-product fusion. Per gate: a kind tag and 8
   coefficient slots (dense: the 2x2 row-major as re/im pairs; phase: the
   phase in slots 0-1; Rz: cos/sin of theta/2 in slots 0-1). *)
type fused1q_plan = { f1_kinds : int array; f1_coeffs : float array }

let f1_dense = 0
and f1_swap = 1
and f1_phase = 2
and f1_rz = 3

let fused1q_plan_of gates =
  (* Identities are dropped: their standalone kernel is a no-op. *)
  let live = List.filter (fun u -> u <> Gate.I) gates in
  let n = List.length live in
  let kinds = Array.make n 0 and coeffs = Array.make (8 * n) 0.0 in
  List.iteri
    (fun idx u ->
      let base = 8 * idx in
      let phase pr pi =
        kinds.(idx) <- f1_phase;
        coeffs.(base) <- pr;
        coeffs.(base + 1) <- pi
      in
      match u with
      | Gate.X -> kinds.(idx) <- f1_swap
      | Gate.Z -> phase (-1.0) 0.0
      | Gate.S -> phase 0.0 1.0
      | Gate.Sdag -> phase 0.0 (-1.0)
      | Gate.T -> phase t_phase_re t_phase_im
      | Gate.Tdag -> phase t_phase_re (-.t_phase_im)
      | Gate.Rz theta ->
          let h = theta /. 2.0 in
          kinds.(idx) <- f1_rz;
          coeffs.(base) <- cos h;
          coeffs.(base + 1) <- sin h
      | u ->
          let m = Gate.matrix u in
          assert (Matrix.rows m = 2 && Matrix.cols m = 2);
          kinds.(idx) <- f1_dense;
          let put j z =
            coeffs.(base + (2 * j)) <- Cplx.re z;
            coeffs.(base + (2 * j) + 1) <- Cplx.im z
          in
          put 0 (Matrix.get m 0 0);
          put 1 (Matrix.get m 0 1);
          put 2 (Matrix.get m 1 0);
          put 3 (Matrix.get m 1 1))
    live;
  { f1_kinds = kinds; f1_coeffs = coeffs }

let fused1q_gates plan = Array.length plan.f1_kinds

let apply_fused1q s plan q =
  let ngates = Array.length plan.f1_kinds in
  if ngates > 0 then begin
    let kinds = plan.f1_kinds and coeffs = plan.f1_coeffs in
    let step = 1 lsl q in
    let re = s.re and im = s.im in
    run_range s (Array.length re lsr 1) (fun lo hi ->
        let x0r = ref 0.0 and x0i = ref 0.0 and x1r = ref 0.0 and x1i = ref 0.0 in
        for p = lo to hi - 1 do
          let i0 = pair_base step p in
          let i1 = i0 lor step in
          x0r := Array.unsafe_get re i0;
          x0i := Array.unsafe_get im i0;
          x1r := Array.unsafe_get re i1;
          x1i := Array.unsafe_get im i1;
          for g = 0 to ngates - 1 do
            let base = 8 * g in
            let kind = Array.unsafe_get kinds g in
            if kind = f1_dense then begin
              let ar = Array.unsafe_get coeffs base
              and ai = Array.unsafe_get coeffs (base + 1)
              and br = Array.unsafe_get coeffs (base + 2)
              and bi = Array.unsafe_get coeffs (base + 3)
              and cr = Array.unsafe_get coeffs (base + 4)
              and ci = Array.unsafe_get coeffs (base + 5)
              and dr = Array.unsafe_get coeffs (base + 6)
              and di = Array.unsafe_get coeffs (base + 7) in
              let y0r = (ar *. !x0r) -. (ai *. !x0i) +. (br *. !x1r) -. (bi *. !x1i) in
              let y0i = (ar *. !x0i) +. (ai *. !x0r) +. (br *. !x1i) +. (bi *. !x1r) in
              let y1r = (cr *. !x0r) -. (ci *. !x0i) +. (dr *. !x1r) -. (di *. !x1i) in
              let y1i = (cr *. !x0i) +. (ci *. !x0r) +. (dr *. !x1i) +. (di *. !x1r) in
              x0r := y0r;
              x0i := y0i;
              x1r := y1r;
              x1i := y1i
            end
            else if kind = f1_swap then begin
              let tr = !x0r and ti = !x0i in
              x0r := !x1r;
              x0i := !x1i;
              x1r := tr;
              x1i := ti
            end
            else if kind = f1_phase then begin
              let pr = Array.unsafe_get coeffs base
              and pi = Array.unsafe_get coeffs (base + 1) in
              let r = !x1r and i = !x1i in
              x1r := (r *. pr) -. (i *. pi);
              x1i := (r *. pi) +. (i *. pr)
            end
            else begin
              (* Rz: x0 by (c, -s), x1 by (c, s) — as in the standalone
                 single-sweep kernel. *)
              let c = Array.unsafe_get coeffs base
              and si = Array.unsafe_get coeffs (base + 1) in
              let nsi = -.si in
              let r0 = !x0r and i0' = !x0i in
              x0r := (r0 *. c) -. (i0' *. nsi);
              x0i := (r0 *. nsi) +. (i0' *. c);
              let r1 = !x1r and i1' = !x1i in
              x1r := (r1 *. c) -. (i1' *. si);
              x1i := (r1 *. si) +. (i1' *. c)
            end
          done;
          Array.unsafe_set re i0 !x0r;
          Array.unsafe_set im i0 !x0i;
          Array.unsafe_set re i1 !x1r;
          Array.unsafe_set im i1 !x1i
        done)
  end

(* A coalesced run of diagonal gates (any qubits): one sweep over the
   vector applying every term to each amplitude, instead of one sweep per
   gate. Terms are stored in flat arrays (no per-amplitude allocation):
   kind 0 multiplies by (re, im) when [k land mask = mask] (Z/S/T/Cz/
   Cphase/Crk — identities are dropped at plan build); kind 1 is Rz, a
   multiply by (re, +/-im) depending on the bit under [mask]. Per-term
   arithmetic matches the per-gate kernels exactly. *)
type diag_plan = {
  kinds : int array;
  masks : int array;
  phase_re : float array;
  phase_im : float array;
  (* Pattern table: the amplitude index only enters through the bits under
     [tbl_qubits], so every assignment of those bits gets its multiply
     sequence pre-resolved at plan build — the same (re, im) values in the
     same term order the branchy scan would use, making the table path
     strictly bit-identical to it. Empty [tbl_offsets] means the table was
     too large (many distinct qubits x many terms) and the scan is used. *)
  tbl_qubits : int array;
  tbl_offsets : int array;
  tbl_coeffs : float array;
}

let diag_plan_terms plan = Array.length plan.kinds

(* One diagonal gate as (kind, mask, re, im); None for identity (dropped)
   or a non-diagonal gate (caller bug). *)
let diag_term u ops =
  match (u, ops) with
  | Gate.I, _ -> Some None
  | Gate.Z, [| q |] -> Some (Some (0, 1 lsl q, -1.0, 0.0))
  | Gate.S, [| q |] -> Some (Some (0, 1 lsl q, 0.0, 1.0))
  | Gate.Sdag, [| q |] -> Some (Some (0, 1 lsl q, 0.0, -1.0))
  | Gate.T, [| q |] -> Some (Some (0, 1 lsl q, t_phase_re, t_phase_im))
  | Gate.Tdag, [| q |] -> Some (Some (0, 1 lsl q, t_phase_re, -.t_phase_im))
  | Gate.Rz theta, [| q |] ->
      let h = theta /. 2.0 in
      Some (Some (1, 1 lsl q, cos h, sin h))
  | Gate.Cz, [| q1; q2 |] -> Some (Some (0, (1 lsl q1) lor (1 lsl q2), -1.0, 0.0))
  | Gate.Cphase phi, [| q1; q2 |] ->
      Some (Some (0, (1 lsl q1) lor (1 lsl q2), cos phi, sin phi))
  | Gate.Crk k, [| q1; q2 |] ->
      let phi = 2.0 *. Float.pi /. float_of_int (1 lsl k) in
      Some (Some (0, (1 lsl q1) lor (1 lsl q2), cos phi, sin phi))
  | _ -> None

let diag_table kinds masks pres pims =
  let nterms = Array.length kinds in
  let involved = Array.fold_left ( lor ) 0 masks in
  let rec bit_positions acc b v =
    if v = 0 then List.rev acc
    else if v land 1 = 1 then bit_positions (b :: acc) (b + 1) (v lsr 1)
    else bit_positions acc (b + 1) (v lsr 1)
  in
  let qubits = Array.of_list (bit_positions [] 0 involved) in
  let m = Array.length qubits in
  if m > 12 || (1 lsl m) * nterms > 1 lsl 16 then ([||], [||], [||])
  else begin
    (* Each term's mask and bit, re-expressed in pattern space (bit j of a
       pattern is the amplitude's bit under [qubits.(j)]). *)
    let pat_of_mask mask =
      let p = ref 0 in
      Array.iteri (fun j q -> if mask land (1 lsl q) <> 0 then p := !p lor (1 lsl j)) qubits;
      !p
    in
    let pmasks = Array.map pat_of_mask masks in
    let npat = 1 lsl m in
    let offsets = Array.make (npat + 1) 0 in
    let applies pat t = kinds.(t) = 1 || pat land pmasks.(t) = pmasks.(t) in
    for pat = 0 to npat - 1 do
      let c = ref 0 in
      for t = 0 to nterms - 1 do
        if applies pat t then incr c
      done;
      offsets.(pat + 1) <- offsets.(pat) + !c
    done;
    let coeffs = Array.make (2 * offsets.(npat)) 0.0 in
    for pat = 0 to npat - 1 do
      let w = ref (offsets.(pat)) in
      for t = 0 to nterms - 1 do
        if applies pat t then begin
          let pi =
            if kinds.(t) = 1 && pat land pmasks.(t) = 0 then -.pims.(t) else pims.(t)
          in
          coeffs.(2 * !w) <- pres.(t);
          coeffs.((2 * !w) + 1) <- pi;
          incr w
        end
      done
    done;
    (qubits, offsets, coeffs)
  end

let diag_plan_of gates =
  let terms = List.map (fun (u, ops) -> diag_term u ops) gates in
  if List.exists (fun t -> t = None) terms then None
  else begin
    let live = List.filter_map Fun.id terms |> List.filter_map Fun.id in
    let n = List.length live in
    let kinds = Array.make n 0
    and masks = Array.make n 0
    and phase_re = Array.make n 0.0
    and phase_im = Array.make n 0.0 in
    List.iteri
      (fun i (kind, mask, pr, pi) ->
        kinds.(i) <- kind;
        masks.(i) <- mask;
        phase_re.(i) <- pr;
        phase_im.(i) <- pi)
      live;
    let tbl_qubits, tbl_offsets, tbl_coeffs = diag_table kinds masks phase_re phase_im in
    Some { kinds; masks; phase_re; phase_im; tbl_qubits; tbl_offsets; tbl_coeffs }
  end

let apply_diag_plan s plan =
  let nterms = Array.length plan.kinds in
  if nterms = 0 then ()
  else if Array.length plan.tbl_offsets > 0 then begin
    let qubits = plan.tbl_qubits
    and offsets = plan.tbl_offsets
    and coeffs = plan.tbl_coeffs in
    let m = Array.length qubits in
    let re = s.re and im = s.im in
    run_range s (Array.length re) (fun lo hi ->
        let ar = ref 0.0 and ai = ref 0.0 in
        for k = lo to hi - 1 do
          let pat = ref 0 in
          for j = 0 to m - 1 do
            pat := !pat lor (((k lsr Array.unsafe_get qubits j) land 1) lsl j)
          done;
          let stop = Array.unsafe_get offsets (!pat + 1) in
          let c = ref (Array.unsafe_get offsets !pat) in
          if !c < stop then begin
            ar := Array.unsafe_get re k;
            ai := Array.unsafe_get im k;
            while !c < stop do
              let pr = Array.unsafe_get coeffs (2 * !c)
              and pi = Array.unsafe_get coeffs ((2 * !c) + 1) in
              let r = !ar and i = !ai in
              ar := (r *. pr) -. (i *. pi);
              ai := (r *. pi) +. (i *. pr);
              incr c
            done;
            Array.unsafe_set re k !ar;
            Array.unsafe_set im k !ai
          end
        done)
  end
  else begin
    let kinds = plan.kinds and masks = plan.masks in
    let pres = plan.phase_re and pims = plan.phase_im in
    let re = s.re and im = s.im in
    run_range s (Array.length re) (fun lo hi ->
        let ar = ref 0.0 and ai = ref 0.0 in
        for k = lo to hi - 1 do
          ar := Array.unsafe_get re k;
          ai := Array.unsafe_get im k;
          for t = 0 to nterms - 1 do
            let mask = Array.unsafe_get masks t in
            if Array.unsafe_get kinds t = 0 then begin
              if k land mask = mask then begin
                let pr = Array.unsafe_get pres t and pi = Array.unsafe_get pims t in
                let r = !ar and i = !ai in
                ar := (r *. pr) -. (i *. pi);
                ai := (r *. pi) +. (i *. pr)
              end
            end
            else begin
              let pr = Array.unsafe_get pres t in
              let pi =
                if k land mask <> 0 then Array.unsafe_get pims t
                else -.Array.unsafe_get pims t
              in
              let r = !ar and i = !ai in
              ar := (r *. pr) -. (i *. pi);
              ai := (r *. pi) +. (i *. pr)
            end
          done;
          Array.unsafe_set re k !ar;
          Array.unsafe_set im k !ai
        done)
  end

(* --- generic fallback --------------------------------------------------- *)

(* Generic k-qubit dense application (fallback, k <= 3 in practice). *)
let apply_generic s u ops =
  let m = Gate.matrix u in
  let k = Array.length ops in
  let small_dim = 1 lsl k in
  assert (Matrix.rows m = small_dim);
  (* Enumerate assignments of the non-operand qubits, then mix the 2^k
     amplitudes addressed by the operand qubits. Operand order is
     most-significant-first in the small matrix. *)
  let masks = Array.map (fun q -> 1 lsl q) ops in
  let op_mask = Array.fold_left ( lor ) 0 masks in
  let dim = dimension s in
  let scratch_re = Array.make small_dim 0.0 and scratch_im = Array.make small_dim 0.0 in
  let index_for base sub =
    (* sub's bit (k-1-i) corresponds to ops.(i) because ops are MSB-first. *)
    let idx = ref base in
    for i = 0 to k - 1 do
      if sub land (1 lsl (k - 1 - i)) <> 0 then idx := !idx lor masks.(i)
    done;
    !idx
  in
  let base = ref 0 in
  while !base < dim do
    if !base land op_mask = 0 then begin
      for sub = 0 to small_dim - 1 do
        let idx = index_for !base sub in
        scratch_re.(sub) <- s.re.(idx);
        scratch_im.(sub) <- s.im.(idx)
      done;
      for row = 0 to small_dim - 1 do
        let acc_r = ref 0.0 and acc_i = ref 0.0 in
        for col = 0 to small_dim - 1 do
          let e = Matrix.get m row col in
          let er = Cplx.re e and ei = Cplx.im e in
          if er <> 0.0 || ei <> 0.0 then begin
            acc_r := !acc_r +. (er *. scratch_re.(col)) -. (ei *. scratch_im.(col));
            acc_i := !acc_i +. (er *. scratch_im.(col)) +. (ei *. scratch_re.(col))
          end
        done;
        let idx = index_for !base row in
        s.re.(idx) <- !acc_r;
        s.im.(idx) <- !acc_i
      done
    end;
    incr base
  done

(* --- gate dispatch ------------------------------------------------------ *)

let apply s u ops =
  Array.iter
    (fun q ->
      if q < 0 || q >= s.qubit_count then invalid_arg "State.apply: qubit out of range")
    ops;
  match (u, ops) with
  | Gate.I, _ -> ()
  | Gate.X, [| q |] -> apply_x s q
  | Gate.Z, [| q |] -> apply_phase1 s q (-1.0) 0.0
  | Gate.S, [| q |] -> apply_phase1 s q 0.0 1.0
  | Gate.Sdag, [| q |] -> apply_phase1 s q 0.0 (-1.0)
  | Gate.T, [| q |] -> apply_phase1 s q t_phase_re t_phase_im
  | Gate.Tdag, [| q |] -> apply_phase1 s q t_phase_re (-.t_phase_im)
  | Gate.Rz theta, [| q |] ->
      (* Diagonal: e^{-i t/2} on |0>, e^{+i t/2} on |1>. *)
      let h = theta /. 2.0 in
      apply_rz1 s q ~c:(cos h) ~si:(sin h)
  | (Gate.Y | Gate.H | Gate.X90 | Gate.Xm90 | Gate.Y90 | Gate.Ym90 | Gate.Rx _ | Gate.Ry _), [| q |]
    ->
      apply_matrix1 s (Gate.matrix u) q
  | Gate.Cnot, [| control; target |] -> apply_cnot s control target
  | Gate.Cz, [| q1; q2 |] -> apply_phase2 s q1 q2 (-1.0) 0.0
  | Gate.Swap, [| q1; q2 |] -> apply_swap s q1 q2
  | Gate.Cphase phi, [| q1; q2 |] -> apply_phase2 s q1 q2 (cos phi) (sin phi)
  | Gate.Crk k, [| q1; q2 |] ->
      let phi = 2.0 *. Float.pi /. float_of_int (1 lsl k) in
      apply_phase2 s q1 q2 (cos phi) (sin phi)
  | Gate.Toffoli, [| c1; c2; target |] -> apply_toffoli s c1 c2 target
  | _, _ -> apply_generic s u ops

(* --- measurement ------------------------------------------------------ *)

let prob_one s q =
  let mask = 1 lsl q in
  let acc = ref 0.0 in
  for k = 0 to dimension s - 1 do
    if k land mask <> 0 then acc := !acc +. (s.re.(k) *. s.re.(k)) +. (s.im.(k) *. s.im.(k))
  done;
  !acc

let collapse s q outcome =
  assert (outcome = 0 || outcome = 1);
  let mask = 1 lsl q in
  let keep k = if outcome = 1 then k land mask <> 0 else k land mask = 0 in
  for k = 0 to dimension s - 1 do
    if not (keep k) then begin
      s.re.(k) <- 0.0;
      s.im.(k) <- 0.0
    end
  done;
  normalize s

let measure s rng q =
  let p1 = prob_one s q in
  let outcome = if Rng.float rng 1.0 < p1 then 1 else 0 in
  collapse s q outcome;
  outcome

(* --- sampling ----------------------------------------------------------- *)

(* Cumulative distribution for repeated draws: built once in O(2^n), then
   each draw is a binary search (the seed sample_index linearly rescanned
   the probabilities on every draw). The accumulation order matches the
   old scan, and "first k with cumulative k > target" is the same
   predicate as the scan's [target < acc], so draws are bit-identical. *)
type sampler = { cumulative : float array }

let sampler s =
  let dim = dimension s in
  let cumulative = Array.make dim 0.0 in
  let acc = ref 0.0 in
  for k = 0 to dim - 1 do
    acc := !acc +. probability_of s k;
    cumulative.(k) <- !acc
  done;
  { cumulative }

let sampler_draw sp rng =
  let target = Rng.float rng 1.0 in
  let cumulative = sp.cumulative in
  let lo = ref 0 and hi = ref (Array.length cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get cumulative mid > target then hi := mid else lo := mid + 1
  done;
  !lo

let sample_index s rng = sampler_draw (sampler s) rng

let overlap a b =
  assert (dimension a = dimension b);
  let acc_r = ref 0.0 and acc_i = ref 0.0 in
  for k = 0 to dimension a - 1 do
    (* conj(a_k) * b_k *)
    acc_r := !acc_r +. (a.re.(k) *. b.re.(k)) +. (a.im.(k) *. b.im.(k));
    acc_i := !acc_i +. (a.re.(k) *. b.im.(k)) -. (a.im.(k) *. b.re.(k))
  done;
  Cplx.make !acc_r !acc_i

let fidelity a b = Cplx.norm2 (overlap a b)

let expectation_diag s f =
  let acc = ref 0.0 in
  for k = 0 to dimension s - 1 do
    acc := !acc +. (f k *. probability_of s k)
  done;
  !acc

let apply_diagonal_phase s f =
  let re = s.re and im = s.im in
  run_range s (Array.length re) (fun lo hi ->
      for k = lo to hi - 1 do
        let phi = f k in
        let c = cos phi and si = sin phi in
        let r = Array.unsafe_get re k and i = Array.unsafe_get im k in
        Array.unsafe_set re k ((r *. c) -. (i *. si));
        Array.unsafe_set im k ((r *. si) +. (i *. c))
      done)

let expectation_pauli s terms =
  let qubits = List.map fst terms in
  let sorted = List.sort_uniq compare qubits in
  if List.length sorted <> List.length qubits then
    invalid_arg "State.expectation_pauli: repeated qubit";
  let probe = copy s in
  (* Rotate each qubit's basis so the operator becomes diagonal (Z). *)
  List.iter
    (fun (q, letter) ->
      match letter with
      | 'Z' -> ()
      | 'X' -> apply probe Gate.H [| q |]
      | 'Y' ->
          apply probe Gate.Sdag [| q |];
          apply probe Gate.H [| q |]
      | c -> invalid_arg (Printf.sprintf "State.expectation_pauli: '%c'" c))
    terms;
  let mask = List.fold_left (fun m q -> m lor (1 lsl q)) 0 qubits in
  expectation_diag probe (fun k ->
      if Qca_util.Bits.parity (k land mask) = 0 then 1.0 else -1.0)

let apply_permutation s f =
  let dim = dimension s in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  let hit = Array.make dim false in
  for k = 0 to dim - 1 do
    let j = f k in
    if j < 0 || j >= dim || hit.(j) then
      invalid_arg "State.apply_permutation: not a bijection";
    hit.(j) <- true;
    re.(j) <- s.re.(k);
    im.(j) <- s.im.(k)
  done;
  Array.blit re 0 s.re 0 dim;
  Array.blit im 0 s.im 0 dim

let apply_controlled_permutation s ~control f =
  let mask = 1 lsl control in
  let guarded k =
    if k land mask = 0 then k
    else begin
      let j = f k in
      if j land mask = 0 then
        invalid_arg "State.apply_controlled_permutation: permutation clears the control";
      j
    end
  in
  apply_permutation s guarded

let memory_bytes n = 2 * 8 * (1 lsl n)

(* --- seed kernels, kept as the benchmark baseline ----------------------- *)

(* The pre-kernel-layer implementations, verbatim: closure-predicate phase
   scans, branching CNOT/Toffoli over all target pairs, two-pass Rz,
   per-call cos/sin for T. [bench kernels] measures the new kernels
   against these, and a runtest guard asserts the new ones never fall
   behind pathologically. Not a public execution path. *)
module Reference = struct
  let iter_pairs s q f =
    let step = 1 lsl q in
    let dim = dimension s in
    let block = ref 0 in
    while !block < dim do
      for offset = !block to !block + step - 1 do
        f offset (offset + step)
      done;
      block := !block + (2 * step)
    done

  let apply_matrix1 s m q =
    assert (Matrix.rows m = 2 && Matrix.cols m = 2);
    let a = Matrix.get m 0 0 and b = Matrix.get m 0 1 in
    let c = Matrix.get m 1 0 and d = Matrix.get m 1 1 in
    let ar = Cplx.re a and ai = Cplx.im a in
    let br = Cplx.re b and bi = Cplx.im b in
    let cr = Cplx.re c and ci = Cplx.im c in
    let dr = Cplx.re d and di = Cplx.im d in
    let re = s.re and im = s.im in
    let rotate i0 i1 =
      let x0r = re.(i0) and x0i = im.(i0) in
      let x1r = re.(i1) and x1i = im.(i1) in
      re.(i0) <- (ar *. x0r) -. (ai *. x0i) +. (br *. x1r) -. (bi *. x1i);
      im.(i0) <- (ar *. x0i) +. (ai *. x0r) +. (br *. x1i) +. (bi *. x1r);
      re.(i1) <- (cr *. x0r) -. (ci *. x0i) +. (dr *. x1r) -. (di *. x1i);
      im.(i1) <- (cr *. x0i) +. (ci *. x0r) +. (dr *. x1i) +. (di *. x1r)
    in
    iter_pairs s q rotate

  let apply_x s q =
    let swap i0 i1 =
      let tr = s.re.(i0) and ti = s.im.(i0) in
      s.re.(i0) <- s.re.(i1);
      s.im.(i0) <- s.im.(i1);
      s.re.(i1) <- tr;
      s.im.(i1) <- ti
    in
    iter_pairs s q swap

  let apply_phase_if s predicate re_phase im_phase =
    let re = s.re and im = s.im in
    for k = 0 to dimension s - 1 do
      if predicate k then begin
        let r = re.(k) and i = im.(k) in
        re.(k) <- (r *. re_phase) -. (i *. im_phase);
        im.(k) <- (r *. im_phase) +. (i *. re_phase)
      end
    done

  let apply_cnot s control target =
    let cmask = 1 lsl control in
    let swap i0 i1 =
      if i0 land cmask <> 0 then begin
        let tr = s.re.(i0) and ti = s.im.(i0) in
        s.re.(i0) <- s.re.(i1);
        s.im.(i0) <- s.im.(i1);
        s.re.(i1) <- tr;
        s.im.(i1) <- ti
      end
    in
    iter_pairs s target swap

  let apply_swap s q1 q2 =
    let m1 = 1 lsl q1 and m2 = 1 lsl q2 in
    let dim = dimension s in
    for k = 0 to dim - 1 do
      if k land m1 <> 0 && k land m2 = 0 then begin
        let j = k lxor m1 lxor m2 in
        let tr = s.re.(k) and ti = s.im.(k) in
        s.re.(k) <- s.re.(j);
        s.im.(k) <- s.im.(j);
        s.re.(j) <- tr;
        s.im.(j) <- ti
      end
    done

  let apply_toffoli s c1 c2 target =
    let m1 = 1 lsl c1 and m2 = 1 lsl c2 in
    let swap i0 i1 =
      if i0 land m1 <> 0 && i0 land m2 <> 0 then begin
        let tr = s.re.(i0) and ti = s.im.(i0) in
        s.re.(i0) <- s.re.(i1);
        s.im.(i0) <- s.im.(i1);
        s.re.(i1) <- tr;
        s.im.(i1) <- ti
      end
    in
    iter_pairs s target swap

  let apply s u ops =
    Array.iter
      (fun q ->
        if q < 0 || q >= s.qubit_count then invalid_arg "State.apply: qubit out of range")
      ops;
    match (u, ops) with
    | Gate.I, _ -> ()
    | Gate.X, [| q |] -> apply_x s q
    | Gate.Z, [| q |] ->
        let mask = 1 lsl q in
        apply_phase_if s (fun k -> k land mask <> 0) (-1.0) 0.0
    | Gate.S, [| q |] ->
        let mask = 1 lsl q in
        apply_phase_if s (fun k -> k land mask <> 0) 0.0 1.0
    | Gate.Sdag, [| q |] ->
        let mask = 1 lsl q in
        apply_phase_if s (fun k -> k land mask <> 0) 0.0 (-1.0)
    | Gate.T, [| q |] ->
        let mask = 1 lsl q in
        let c = cos (Float.pi /. 4.0) and si = sin (Float.pi /. 4.0) in
        apply_phase_if s (fun k -> k land mask <> 0) c si
    | Gate.Tdag, [| q |] ->
        let mask = 1 lsl q in
        let c = cos (Float.pi /. 4.0) and si = sin (Float.pi /. 4.0) in
        apply_phase_if s (fun k -> k land mask <> 0) c (-.si)
    | Gate.Rz theta, [| q |] ->
        let mask = 1 lsl q in
        let h = theta /. 2.0 in
        apply_phase_if s (fun k -> k land mask <> 0) (cos h) (sin h);
        apply_phase_if s (fun k -> k land mask = 0) (cos h) (-.sin h)
    | ( (Gate.Y | Gate.H | Gate.X90 | Gate.Xm90 | Gate.Y90 | Gate.Ym90 | Gate.Rx _ | Gate.Ry _),
        [| q |] ) ->
        apply_matrix1 s (Gate.matrix u) q
    | Gate.Cnot, [| control; target |] -> apply_cnot s control target
    | Gate.Cz, [| q1; q2 |] ->
        let m1 = 1 lsl q1 and m2 = 1 lsl q2 in
        apply_phase_if s (fun k -> k land m1 <> 0 && k land m2 <> 0) (-1.0) 0.0
    | Gate.Swap, [| q1; q2 |] -> apply_swap s q1 q2
    | Gate.Cphase phi, [| q1; q2 |] ->
        let m1 = 1 lsl q1 and m2 = 1 lsl q2 in
        apply_phase_if s (fun k -> k land m1 <> 0 && k land m2 <> 0) (cos phi) (sin phi)
    | Gate.Crk k, [| q1; q2 |] ->
        let phi = 2.0 *. Float.pi /. float_of_int (1 lsl k) in
        let m1 = 1 lsl q1 and m2 = 1 lsl q2 in
        apply_phase_if s (fun idx -> idx land m1 <> 0 && idx land m2 <> 0) (cos phi) (sin phi)
    | Gate.Toffoli, [| c1; c2; target |] -> apply_toffoli s c1 c2 target
    | _, _ -> apply_generic s u ops
end
