type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

(* One parent draw per stream, taken in index order: slicing a batch of k
   streams into windows and deriving window-by-window from the same parent
   yields exactly the same streams as deriving all k at once. *)
let streams t k =
  assert (k >= 0);
  if k = 0 then [||]
  else begin
    let out = Array.make k t in
    for i = 0 to k - 1 do
      out.(i) <- split t
    done;
    out
  end

let int t bound =
  assert (bound > 0);
  (* Truncate to OCaml's native int width and clear the sign bit. *)
  let mask = Int64.to_int (bits64 t) land max_int in
  mask mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1) then into [0, bound). *)
  let mantissa = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int mantissa /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 0.0 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_weighted t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  assert (total > 0.0);
  let target = float t total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
