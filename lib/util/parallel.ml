(* Shared domain pool: chunked parallel-for with fixed chunk boundaries.

   Determinism contract: the range [0, length) is cut into chunks of
   [chunk_size] items; chunk boundaries depend only on [length], never on
   the domain count. Each chunk is executed left-to-right by exactly one
   domain, so element-wise kernels (disjoint writes) perform the same
   floating-point operations on the same elements in the same per-element
   order as a sequential run — bit-identical results for any QCA_DOMAINS. *)

let chunk_size = 16384
let max_domains = 64

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> n
      | Some _ | None -> default)

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let domains =
  ref (clamp 1 max_domains (env_int "QCA_DOMAINS" (Domain.recommended_domain_count ())))

let threshold = ref (clamp 1 30 (env_int "QCA_PARALLEL_THRESHOLD" 18))

let domain_count () = !domains
let set_domain_count n = domains := clamp 1 max_domains n
let threshold_qubits () = !threshold
let set_threshold_qubits n = threshold := clamp 1 30 n
let available () = !domains > 1

(* --- pool --------------------------------------------------------------- *)

type job = {
  body : int -> int -> unit;
  length : int;
  chunk : int;  (* items per claimed chunk (fixed per job) *)
  next : int Atomic.t;  (* next unclaimed chunk start *)
  mutable active : int;  (* domains currently inside [run_chunks] *)
  mutable failed : exn option;  (* first exception raised by a chunk *)
}

let mutex = Mutex.create ()
let work_ready = Condition.create ()
let job_done = Condition.create ()
let current : job option ref = ref None
let generation = ref 0
let stopping = ref false
let workers : unit Domain.t list ref = ref []
let dispatches = ref 0

(* Re-entrancy guard: a kernel body must never dispatch a nested parallel
   loop (the pool has one job slot). The flag is domain-local so that a
   worker running a body which itself calls [for_range]/[for_tasks] (e.g. a
   per-shot state-vector kernel above the qubit threshold) falls back to
   sequential instead of deadlocking on the occupied job slot. *)
let in_parallel = Domain.DLS.new_key (fun () -> false)

(* Claim and run fixed chunks until the job is exhausted. Lock-free between
   chunks: claims go through the atomic cursor. *)
let run_chunks job =
  Domain.DLS.set in_parallel true;
  let continue_ = ref true in
  while !continue_ do
    let lo = Atomic.fetch_and_add job.next job.chunk in
    if lo >= job.length then continue_ := false
    else begin
      let hi = min job.length (lo + job.chunk) in
      try job.body lo hi
      with e ->
        Mutex.lock mutex;
        if job.failed = None then job.failed <- Some e;
        Mutex.unlock mutex
    end
  done;
  Domain.DLS.set in_parallel false

let worker_loop () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock mutex;
    while (not !stopping) && (!generation = !seen || !current = None) do
      Condition.wait work_ready mutex
    done;
    if !stopping then begin
      Mutex.unlock mutex;
      running := false
    end
    else begin
      seen := !generation;
      let job = Option.get !current in
      job.active <- job.active + 1;
      Mutex.unlock mutex;
      run_chunks job;
      Mutex.lock mutex;
      job.active <- job.active - 1;
      if job.active = 0 then Condition.broadcast job_done;
      Mutex.unlock mutex
    end
  done

let ensure_workers wanted =
  while List.length !workers < wanted - 1 do
    workers := Domain.spawn worker_loop :: !workers
  done

let shutdown () =
  Mutex.lock mutex;
  stopping := true;
  Condition.broadcast work_ready;
  Mutex.unlock mutex;
  List.iter Domain.join !workers;
  workers := [];
  stopping := false

let () = at_exit shutdown

let dispatch_count () = !dispatches

let dispatch ~chunk length body =
  ensure_workers !domains;
  incr dispatches;
  let job = { body; length; chunk; next = Atomic.make 0; active = 0; failed = None } in
  Mutex.lock mutex;
  current := Some job;
  incr generation;
  Condition.broadcast work_ready;
  Mutex.unlock mutex;
  (* The caller is one of the pool's domains. *)
  run_chunks job;
  Mutex.lock mutex;
  while job.active > 0 do
    Condition.wait job_done mutex
  done;
  current := None;
  Mutex.unlock mutex;
  match job.failed with Some e -> raise e | None -> ()

let for_range length body =
  if length > 0 then begin
    let d = !domains in
    if d <= 1 || length < 2 * chunk_size || Domain.DLS.get in_parallel then
      body 0 length
    else dispatch ~chunk:chunk_size length body
  end

let default_task_chunk = 16

let for_tasks ?(chunk = default_task_chunk) length body =
  if length > 0 then begin
    let d = !domains in
    let chunk = max 1 chunk in
    if d <= 1 || length <= chunk || Domain.DLS.get in_parallel then
      body 0 length
    else dispatch ~chunk length body
  end
