(** Zero-dependency span/counter tracing for the whole execution stack.

    Every layer of the stack — compiler passes, the execution engine's
    plan/evolve/sample phases, the QX apply loops, the micro-architecture
    controller — carries tracing hooks built on this module. The design
    goal is that the hooks are {e always compiled in} and {e free when
    disabled}: with no sink installed (the default), every entry point
    reduces to one branch on a [ref] read, no allocation, and no RNG
    interaction, so traced and untraced runs are bit-identical
    ([dune exec bench/main.exe -- trace] measures the disabled-path cost;
    [BENCH_trace.json] keeps it under 3%).

    {2 Model}

    - A {e span} is a named, nested interval of work. It records a
      wall-clock duration, an optional {e simulated-nanosecond} duration
      (the micro-architecture's timing-grid time, unrelated to host time),
      and ordered key/value {e attributes} ([gates_in=7],
      [plan="sampled"], ...).
    - A {e counter} is a named monotonic tally global to the collector
      ([qx.apply.h], [microarch.pulse], ...), incremented from hot loops.
    - A {e sink} receives spans and counters. The default sink is a no-op;
      {!collecting} (or {!install}) attaches a {!collector} that retains
      the span tree for export.

    Spans nest by dynamic scope: a span begun while another is open becomes
    its child. {!with_span} is the safe surface (closes on exception);
    {!begin_span}/{!end_span} exist for spans that cross function
    boundaries. The per-layer instrumentation map and output formats are
    documented in [docs/observability.md]. *)

type value =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool  (** Attribute values (rendered in both exporters). *)

val value_to_string : value -> string
(** Unquoted rendering, e.g. [Int 7 -> "7"], [String "x" -> "x"]. *)

type span
(** A handle to an open span. When tracing is disabled the handle is a
    constant and every operation on it is a no-op. *)

val null_span : span
(** The disabled handle ({!begin_span}'s result when no sink is
    installed). Safe to end, annotate, or ignore. *)

(** {2 Recording} *)

val enabled : unit -> bool
(** Whether a sink is installed. Hot paths guard any argument
    construction (string concatenation, gate counting) behind this so the
    disabled path computes nothing. *)

val begin_span : ?attrs:(string * value) list -> string -> span
(** Open a span as a child of the innermost open span (or as a root).
    No-op returning {!null_span} when disabled. *)

val end_span : ?attrs:(string * value) list -> span -> unit
(** Close a span, appending [attrs] (closing-time facts: gate counts out,
    degradation events). Closing a span that is not the innermost first
    closes any still-open descendants (defensive: a skipped [end_span]
    cannot corrupt the tree). Ending {!null_span} or an already-closed
    span is a no-op. *)

val with_span :
  ?attrs:(string * value) list -> string -> (span -> 'a) -> 'a
(** [with_span name f] runs [f] inside a fresh span, closing it when [f]
    returns {e or raises}. The span handle is passed to [f] for
    {!add_attr}/{!annotate}/{!set_sim_ns}. When disabled, [f] receives
    {!null_span} and the only cost is the [enabled] branch. *)

val add_attr : span -> string -> value -> unit
(** Append one attribute to an open span (no-op when closed/disabled). *)

val annotate : span -> (unit -> (string * value) list) -> unit
(** Lazy {!add_attr}: the thunk runs only when the span is live, so
    attribute computation (e.g. a gate-count walk) costs nothing when
    tracing is disabled. *)

val set_sim_ns : span -> int -> unit
(** Record the span's duration on the {e simulated} clock (nanoseconds on
    the micro-architecture timing grid). Independent of wall time. *)

val add_counter : string -> int -> unit
(** Add to a named counter (created at zero on first use). Guard the name
    construction behind {!enabled} in hot loops. *)

(** {2 Collecting} *)

type node = {
  span_name : string;
  start_s : float;  (** Wall-clock start, seconds (collector epoch). *)
  wall_s : float;  (** Wall-clock duration, seconds. *)
  sim_ns : int option;  (** Simulated-clock duration, when recorded. *)
  attrs : (string * value) list;  (** In insertion order. *)
  children : node list;  (** In execution order. *)
}
(** One completed span. *)

type collector
(** A sink that retains completed spans and counter totals. *)

val make_collector : unit -> collector

val install : collector -> unit
(** Make [c] the global sink. Replaces any previous sink. *)

val uninstall : unit -> unit
(** Restore the no-op sink (open spans in the old collector are closed
    first, so its tree is complete). *)

val collecting : collector -> (unit -> 'a) -> 'a
(** [collecting c f]: {!install} [c], run [f], {!uninstall} — also on
    exception. *)

val roots : collector -> node list
(** Completed top-level spans, in execution order. *)

val counters : collector -> (string * int) list
(** Counter totals, sorted by name. *)

val event_count : collector -> int
(** Total recording operations absorbed (span opens + closes + counter
    increments + attribute writes): the hook count a disabled run would
    have branched on, used by the overhead benchmark. *)

(** {2 Exporters} *)

val to_tree_string : ?show_wall:bool -> collector -> string
(** Human-readable span tree, one line per span —
    [- name key=value ... \[0.123ms\]] — followed by a [counters:]
    section. Runs of same-named sibling spans (e.g. one
    [microarch.session] per shot) collapse into one [name xN] line whose
    integer attributes and sim-ns are summed. [show_wall] (default true)
    controls the trailing wall-time bracket; attribute and counter output
    is deterministic for seeded runs. *)

val to_chrome_json : collector -> string
(** Chrome [trace_event]-format JSON (one object with a [traceEvents]
    array): spans as complete ("ph":"X") events with microsecond
    timestamps relative to the first span, attributes and sim-ns under
    ["args"]; counters as one final counter ("ph":"C") event each. Loads
    in [chrome://tracing] and Perfetto. *)
