(** Descriptive statistics and curve fits for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean (0 for the empty array). *)

val variance : float array -> float
(** Unbiased sample variance (0 for fewer than two samples). *)

val stddev : float array -> float
(** [sqrt (variance xs)]. *)

val minimum : float array -> float
(** Smallest element ([infinity] for the empty array). *)

val maximum : float array -> float
(** Largest element ([neg_infinity] for the empty array). *)

val histogram : bins:int -> lo:float -> hi:float -> float array -> int array
(** Counts per equal-width bin; values outside [lo, hi) are clamped to the
    edge bins. *)

val linear_fit : (float * float) array -> float * float
(** Least-squares [(slope, intercept)] fit of y = slope x + intercept. *)

val exponential_decay_fit : (float * float) array -> float * float
(** Fit y = a * p^x for positive y by linear regression in log space;
    returns [(a, p)]. Used for randomised-benchmarking decay extraction. *)

val binomial_stderr : float -> int -> float
(** Standard error of an empirical probability estimated from n shots. *)
