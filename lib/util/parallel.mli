(** Shared domain pool for data-parallel kernels (OCaml 5 [Domain]s).

    The pool runs {e chunked parallel-for} loops with {b fixed chunk
    boundaries}: the index range [0, length) is cut into chunks of
    {!chunk_size} items regardless of how many domains execute them, and
    each chunk is processed left-to-right by exactly one domain. A kernel
    whose chunks touch disjoint state (every QX amplitude kernel does)
    therefore performs {e the same floating-point operations on the same
    elements in the same per-element order} as a sequential run — results
    are bit-identical whatever [QCA_DOMAINS] says. Reductions do not have
    this property and must stay sequential; see [docs/performance.md].

    Worker domains are spawned lazily on the first parallel dispatch, kept
    alive for reuse, and joined by an [at_exit] hook.

    {2 Configuration}

    - [QCA_DOMAINS] — total domains used per loop, caller included
      (default: [Domain.recommended_domain_count ()], capped at 64).
      [QCA_DOMAINS=1] disables the parallel path entirely.
    - [QCA_PARALLEL_THRESHOLD] — minimum qubit count before the state-vector
      layer considers parallel dispatch (default 18). The threshold gate
      lives in the caller ({!threshold_qubits} is read by [Qx.State]);
      {!for_range} itself only checks domain count and range length. *)

val chunk_size : int
(** Items per chunk (16384). Chunk [c] always covers indices
    [c * chunk_size, min ((c+1) * chunk_size, length)); boundaries never
    depend on the domain count. *)

val domain_count : unit -> int
(** Domains used per parallel loop (caller included). *)

val set_domain_count : int -> unit
(** Override {!domain_count} (clamped to [1, 64]); primarily for tests and
    benchmarks. Already-spawned workers are kept (the pool only grows). *)

val threshold_qubits : unit -> int
(** Qubit count below which [Qx.State] keeps every kernel sequential. *)

val set_threshold_qubits : int -> unit
(** Override {!threshold_qubits} (tests/benchmarks). *)

val available : unit -> bool
(** [domain_count () > 1]. *)

val for_range : int -> (int -> int -> unit) -> unit
(** [for_range length f] runs [f lo hi] over half-open sub-ranges that
    exactly cover [0, length). Sequential ([f 0 length]) when the pool has
    one domain, when [length < 2 * chunk_size], or when called from inside
    a parallel section; otherwise the fixed chunks are claimed by the pool.
    [f] must only write state owned by its index range. Exceptions raised
    by [f] are re-raised in the caller (first one wins). *)

val for_tasks : ?chunk:int -> int -> (int -> int -> unit) -> unit
(** [for_tasks ?chunk length f] is {!for_range} for coarse work items
    (shots, jobs) rather than amplitudes: the range is claimed in chunks of
    [chunk] items (default 16, clamped to at least 1), so even a few hundred
    items spread across the pool. Chunk boundaries depend only on [length]
    and [chunk], never on the domain count, preserving the determinism
    contract. Sequential ([f 0 length]) when the pool has one domain, when
    [length <= chunk], or when called from inside a parallel section. [f]
    must only write state owned by its index range; each chunk is executed
    left-to-right by exactly one domain, so per-chunk scratch (one
    simulator instance reused across the chunk's items) is safe. *)

val dispatch_count : unit -> int
(** Number of parallel dispatches performed so far (sequential fallbacks
    not counted) — lets tests assert the parallel path stayed off below
    the qubit threshold. *)

val shutdown : unit -> unit
(** Stop and join the worker domains (idempotent; re-spawned on next use).
    Registered with [at_exit]. *)
