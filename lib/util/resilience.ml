type policy = {
  max_retries : int;
  backoff_ns : int;
  degrade_threshold : float;
}

let default_policy = { max_retries = 3; backoff_ns = 100; degrade_threshold = 0.5 }

type counters = {
  mutable retries : int;
  mutable faulted_shots : int;
  mutable backoff_total_ns : int;
}

let fresh_counters () = { retries = 0; faulted_shots = 0; backoff_total_ns = 0 }

let with_retries policy counters f =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception Error.Error e when e.Error.transient ->
        if attempt >= policy.max_retries then Stdlib.Error e
        else begin
          counters.retries <- counters.retries + 1;
          (* Deterministic exponential backoff, recorded as simulated
             nanoseconds rather than slept. *)
          counters.backoff_total_ns <-
            counters.backoff_total_ns + (policy.backoff_ns lsl attempt);
          go (attempt + 1)
        end
  in
  go 0
