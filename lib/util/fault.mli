(** Deterministic, seeded fault injection for the execution stack.

    An injector draws from its own {!Rng.t} stream (independent of the
    simulation RNG) so that enabling faults never perturbs the quantum
    randomness, and a given seed + spec reproduces the exact same fault
    pattern. A site with rate [0.0] consumes no randomness at all, so an
    all-zero injector is bit-identical to running without one — the
    "resilience off means no behaviour change" guarantee.

    Sites model controller-level classical failures (see
    [docs/resilience.md] for the taxonomy):

    - {!Microcode_lookup}: the micro-code unit misses a mnemonic.
    - {!Pulse_dropout}: the ADI drops a pulse on the way to the AWG.
    - {!Queue_overflow}: a per-channel timing queue overflows.
    - {!Channel_loss}: a measurement result never arrives.
    - {!Backend_transient}: the whole execution backend hiccups for a shot. *)

type site =
  | Microcode_lookup
  | Pulse_dropout
  | Queue_overflow
  | Channel_loss
  | Backend_transient

val all_sites : site list
(** Every site, in declaration order. *)

val site_label : site -> string
(** Stable kebab-case tag, e.g. ["pulse-dropout"]. *)

type spec = {
  microcode_miss : float;
  pulse_dropout : float;
  queue_overflow : float;
  channel_loss : float;
  backend : float;
}
(** Per-site fire probabilities, each in [0, 1]. *)

val off : spec
(** All rates zero. *)

val uniform : float -> spec
(** Same rate at every site; raises [Invalid_argument] outside [0, 1]. *)

type t
(** A seeded injector with per-site fire counters. *)

val default_seed : int
(** Seed used by {!make} when none is given (and by [qxc --fault-seed]'s
    default). *)

val make : ?seed:int -> spec -> t
(** Fresh injector with zeroed counters; equal seed + spec gives an
    identical fault pattern. *)

val enabled : t -> bool
(** Whether any site has a positive rate. *)

val rate : t -> site -> float
(** The spec rate configured for [site]. *)

val fires : t -> site -> bool
(** Draw once at the site's rate and count a fire. Zero-rate sites return
    [false] without consuming randomness. *)

val counts : t -> (string * int) list
(** Cumulative fires per site label (sites that never fired omitted). *)

val total : t -> int
(** Total fires across all sites. *)

(** {2 Deterministic chaos kill points}

    Whereas an injector perturbs {e results}, a kill point kills the
    {e process}: [QCA_CRASH_AT=site:k] in the environment makes the [k]-th
    {!crash_point} hit of the named site abort the process with
    {!crash_exit_code}, leaving the filesystem exactly as it was at that
    instant. The spool and scheduler are instrumented at the sites listed
    in {!crash_sites} (taxonomy in [docs/resilience.md]); the chaos cram
    harness loops submit → crash → restart over every site and checks that
    recovery is bit-identical to an uncrashed run ([docs/service.md]).

    With no target configured, {!crash_point} is one ref read — safe to
    leave plumbed into hot paths. *)

val crash_exit_code : int
(** Process exit code of a chaos abort (70, [EX_SOFTWARE]). *)

val crash_sites : string list
(** The service-layer kill sites instrumented by this repo:
    [claim-pre], [claim-post], [slice], [publish-pre], [publish-post]. *)

val parse_crash_at : string -> (string * int) option
(** Parse a ["site:k"] target (bare ["site"] means [k = 1]; malformed or
    empty strings are [None], never an error). *)

val crash_point : string -> unit
(** Count a hit of [site]; abort the process when the configured target's
    hit count is reached. No-op when chaos is off. *)

val set_crash_at : (string * int) option -> unit
(** Override the target parsed from [QCA_CRASH_AT] (tests/bench). *)

val crash_at : unit -> (string * int) option
(** The currently configured target. *)
