(** Retry/degradation policy shared by every execution surface.

    Transient {!Error} values (see {!Error.t.transient}) are retried up to
    [max_retries] times with deterministic exponential backoff — the stack
    is a simulation, so backoff time is {e recorded} (in nanoseconds) rather
    than slept, keeping runs reproducible. [degrade_threshold] is the
    faulted-shot fraction beyond which callers abandon a backend and fall
    down the degradation ladder (micro-architecture → realistic simulator →
    host; see [docs/resilience.md]). *)

type policy = {
  max_retries : int;  (** Retries per unit of work (e.g. per shot). *)
  backoff_ns : int;  (** Base backoff; attempt [k] adds [backoff_ns * 2^k]. *)
  degrade_threshold : float;
      (** Faulted-shot fraction above which to degrade to a fallback. *)
}

val default_policy : policy
(** [{ max_retries = 3; backoff_ns = 100; degrade_threshold = 0.5 }] *)

type counters = {
  mutable retries : int;
  mutable faulted_shots : int;
  mutable backoff_total_ns : int;
}
(** Mutable tallies threaded through a run; surfaced in
    {!Qca_qx.Engine.run_report}. *)

val fresh_counters : unit -> counters
(** All-zero counters for the start of a run. *)

val with_retries : policy -> counters -> (unit -> 'a) -> ('a, Error.t) result
(** Run a thunk, retrying transient {!Error.Error}s up to
    [policy.max_retries] (counting retries and backoff into [counters]).
    [Error] is an exhausted transient; permanent errors and other
    exceptions propagate unchanged. *)
