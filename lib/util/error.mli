(** Structured errors for the execution stack.

    Every classical failure mode of the stack — a missing micro-code entry,
    a pulse absent from the ADI library, a lost measurement channel, an
    offload to an accelerator that does not exist — is one [kind] carried in
    a value that records where it was raised and any useful context, instead
    of a bare [Failure] string. The [transient] flag drives the retry policy
    ({!Resilience.with_retries}): transient errors are worth re-attempting,
    permanent ones are configuration or input problems.

    Fault taxonomy, retry policy and the degradation ladder are documented
    in [docs/resilience.md]. *)

type kind =
  | Unknown_mnemonic of string  (** Micro-code lookup miss. *)
  | Missing_pulse of string  (** ADI library lookup miss. *)
  | Queue_overflow of { channel : int; depth : int }
      (** Timing-queue depth exceeded on a channel. *)
  | Channel_loss of { qubit : int }  (** Measurement channel dropout. *)
  | Backend_transient of string  (** Transient execution-backend failure. *)
  | Unknown_accelerator of string  (** Offload target not in the park. *)
  | Unsupported_gate of { platform : string; gate : string }
      (** Decomposition cannot reach the platform's primitive set. *)
  | Non_convergence of string  (** An iteration budget was exhausted. *)
  | Syntax of { line : int; token : string; reason : string }
      (** Source-text parse error: 1-based line number, the offending token
          ([""] when the whole line is at fault) and a human-readable
          reason. Raised by the cQASM parser. *)
  | Overloaded of { queued : int; capacity : int }
      (** The job service's admission queue is full; the request was
          rejected after the degradation ladder was exhausted (see
          [docs/service.md]). Transient: resubmitting later can succeed. *)
  | Quota_exceeded of { tenant : string; queued : int; limit : int }
      (** A tenant hit its per-tenant queue quota in the job service.
          Transient: capacity frees up as the tenant's jobs complete. *)
  | Deadline_exceeded of { deadline_ms : int; elapsed_ms : int }
      (** The job's [deadline-ms] budget ran out; enforced cooperatively at
          scheduler slice boundaries ([docs/service.md]). Terminal: the job
          will not be retried. *)
  | Crash_loop of { attempts : int }
      (** A journaled job crashed the daemon on every execution attempt and
          exhausted the attempt cap; it was retired to the spool's
          [failed/] directory as poison ([docs/service.md]). *)
  | Resource_exceeded of { resource : string; needed : float; limit : float }
      (** The static resource estimator ({!Qca_analysis.Estimate}) predicts
          the job needs more of [resource] (["memory-bytes"], ["sim-ns"])
          than the admission cap allows; rejected before any work was done
          ([docs/estimate.md]). Permanent: the same job cannot fit. *)
  | Cancelled of string  (** The named job was cancelled by the client. *)
  | Invalid of string  (** Malformed input (general). *)

type t = {
  kind : kind;
  site : string;  (** Raise site, e.g. ["Controller.issue_op"]. *)
  context : (string * string) list;  (** Extra key/value diagnostics. *)
  transient : bool;  (** Whether a retry can succeed. *)
}

exception Error of t

val make :
  ?context:(string * string) list -> ?transient:bool -> site:string -> kind -> t
(** [transient] defaults per [kind]: queue overflow, channel loss and
    backend-transient are retryable, the rest are permanent. Injected
    faults override with [~transient:true]. *)

val fail :
  ?context:(string * string) list -> ?transient:bool -> site:string -> kind -> 'a
(** [make] then raise {!Error}. *)

val kind_label : kind -> string
(** Stable kebab-case tag, e.g. ["queue-overflow"] (used in metrics JSON). *)

val to_string : t -> string
(** One-line diagnostic: [site: message (transient) [k=v ...]]. *)

val of_exn : exn -> t option
(** Structured view of an exception: {!Error} unwrapped, [Failure] and
    [Invalid_argument] converted to {!Invalid}; [None] otherwise. *)

val protect : site:string -> (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting raised {!Error}/[Failure]/[Invalid_argument]
    into an [Error] result. Other exceptions propagate. *)
