type site =
  | Microcode_lookup
  | Pulse_dropout
  | Queue_overflow
  | Channel_loss
  | Backend_transient

let all_sites =
  [ Microcode_lookup; Pulse_dropout; Queue_overflow; Channel_loss; Backend_transient ]

let site_index = function
  | Microcode_lookup -> 0
  | Pulse_dropout -> 1
  | Queue_overflow -> 2
  | Channel_loss -> 3
  | Backend_transient -> 4

let site_label = function
  | Microcode_lookup -> "microcode-lookup"
  | Pulse_dropout -> "pulse-dropout"
  | Queue_overflow -> "queue-overflow"
  | Channel_loss -> "channel-loss"
  | Backend_transient -> "backend-transient"

type spec = {
  microcode_miss : float;
  pulse_dropout : float;
  queue_overflow : float;
  channel_loss : float;
  backend : float;
}

let off =
  {
    microcode_miss = 0.0;
    pulse_dropout = 0.0;
    queue_overflow = 0.0;
    channel_loss = 0.0;
    backend = 0.0;
  }

let uniform p =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.uniform: rate must be in [0, 1]";
  {
    microcode_miss = p;
    pulse_dropout = p;
    queue_overflow = p;
    channel_loss = p;
    backend = p;
  }

type t = { spec : spec; rng : Rng.t; counts : int array }

let default_seed = 0xFA17

let make ?(seed = default_seed) spec =
  { spec; rng = Rng.create seed; counts = Array.make (List.length all_sites) 0 }

let rate t = function
  | Microcode_lookup -> t.spec.microcode_miss
  | Pulse_dropout -> t.spec.pulse_dropout
  | Queue_overflow -> t.spec.queue_overflow
  | Channel_loss -> t.spec.channel_loss
  | Backend_transient -> t.spec.backend

let enabled t = List.exists (fun s -> rate t s > 0.0) all_sites

(* A zero-rate site consumes no randomness, so an all-zero injector is
   bit-identical to running with no injector at all. *)
let fires t site =
  let p = rate t site in
  p > 0.0
  && Rng.bernoulli t.rng p
  &&
  (t.counts.(site_index site) <- t.counts.(site_index site) + 1;
   true)

let counts t =
  List.filter_map
    (fun site ->
      let n = t.counts.(site_index site) in
      if n > 0 then Some (site_label site, n) else None)
    all_sites

let total t = Array.fold_left ( + ) 0 t.counts

(* ---- deterministic chaos kill points ---------------------------------- *)

let crash_exit_code = 70

let crash_sites =
  [ "claim-pre"; "claim-post"; "slice"; "publish-pre"; "publish-post" ]

let parse_crash_at v =
  match String.index_opt v ':' with
  | None -> if v = "" then None else Some (v, 1)
  | Some i ->
      let site = String.sub v 0 i in
      let k = String.sub v (i + 1) (String.length v - i - 1) in
      if site = "" then None
      else Some (site, max 1 (Option.value ~default:1 (int_of_string_opt k)))

(* One ref read on the (overwhelmingly common) disabled path: the guarantee
   that leaving crash_point calls plumbed into the spool and scheduler is
   free (the bench guard pins the disabled cost under 5% of a cache-hot
   service slice). *)
let crash_target : (string * int) option ref =
  ref
    (match Sys.getenv_opt "QCA_CRASH_AT" with
    | None -> None
    | Some v -> parse_crash_at v)

let set_crash_at target = crash_target := target
let crash_at () = !crash_target

let crash_hits : (string, int) Hashtbl.t = Hashtbl.create 4

let crash_point site =
  match !crash_target with
  | None -> ()
  | Some (s, k) ->
      if String.equal s site then begin
        let n =
          1 + Option.value ~default:0 (Hashtbl.find_opt crash_hits site)
        in
        Hashtbl.replace crash_hits site n;
        if n >= k then begin
          Printf.eprintf "qca: chaos: crashing at %s (hit %d)\n%!" site n;
          Stdlib.exit crash_exit_code
        end
      end
