type value = Int of int | Float of float | String of string | Bool of bool

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> s
  | Bool b -> string_of_bool b

type node = {
  span_name : string;
  start_s : float;
  wall_s : float;
  sim_ns : int option;
  attrs : (string * value) list;
  children : node list;
}

(* An open span accumulates attributes and children in reverse order; both
   are re-reversed once when the span closes into a [node]. *)
type open_span = {
  o_name : string;
  o_start : float;
  mutable o_attrs : (string * value) list;
  mutable o_sim_ns : int option;
  mutable o_children : node list;
  mutable o_closed : bool;
}

type collector = {
  mutable stack : open_span list;  (* innermost first *)
  mutable finished : node list;  (* completed roots, reversed *)
  counter_table : (string, int) Hashtbl.t;
  mutable events : int;
}

type span = open_span option

let null_span = None

(* The global sink. [None] is the shipping default: every recording entry
   point below branches on this once and does nothing else, so tracing
   hooks can stay compiled into hot paths. *)
let sink : collector option ref = ref None

let enabled () = match !sink with None -> false | Some _ -> true

let make_collector () =
  { stack = []; finished = []; counter_table = Hashtbl.create 32; events = 0 }

let node_of sp now =
  sp.o_closed <- true;
  {
    span_name = sp.o_name;
    start_s = sp.o_start;
    wall_s = Float.max 0.0 (now -. sp.o_start);
    sim_ns = sp.o_sim_ns;
    attrs = List.rev sp.o_attrs;
    children = List.rev sp.o_children;
  }

(* Pop and close stack entries down to and including [sp]. Spans opened
   after [sp] but never ended close here too, so a missed [end_span] in an
   exception path cannot leave the tree dangling. *)
let rec pop_until c sp now =
  match c.stack with
  | [] -> ()
  | top :: rest ->
      c.stack <- rest;
      let node = node_of top now in
      (match rest with
      | parent :: _ -> parent.o_children <- node :: parent.o_children
      | [] -> c.finished <- node :: c.finished);
      if top != sp then pop_until c sp now

let begin_span ?(attrs = []) name =
  match !sink with
  | None -> None
  | Some c ->
      let sp =
        {
          o_name = name;
          o_start = Sys.time ();
          o_attrs = List.rev attrs;
          o_sim_ns = None;
          o_children = [];
          o_closed = false;
        }
      in
      c.stack <- sp :: c.stack;
      c.events <- c.events + 1 + List.length attrs;
      Some sp

let end_span ?(attrs = []) span =
  match span, !sink with
  | None, _ | _, None -> ()
  | Some sp, Some c ->
      if (not sp.o_closed) && List.memq sp c.stack then begin
        List.iter (fun kv -> sp.o_attrs <- kv :: sp.o_attrs) attrs;
        c.events <- c.events + 1 + List.length attrs;
        pop_until c sp (Sys.time ())
      end

let with_span ?attrs name f =
  match !sink with
  | None -> f None
  | Some _ -> (
      let sp = begin_span ?attrs name in
      match f sp with
      | v ->
          end_span sp;
          v
      | exception e ->
          end_span sp;
          raise e)

let add_attr span key v =
  match span with
  | Some sp when not sp.o_closed -> (
      sp.o_attrs <- (key, v) :: sp.o_attrs;
      match !sink with None -> () | Some c -> c.events <- c.events + 1)
  | Some _ | None -> ()

let annotate span f =
  match span with
  | Some sp when not sp.o_closed ->
      List.iter (fun kv -> add_attr span (fst kv) (snd kv)) (f ())
  | Some _ | None -> ()

let set_sim_ns span ns =
  match span with
  | Some sp when not sp.o_closed -> sp.o_sim_ns <- Some ns
  | Some _ | None -> ()

let add_counter name n =
  match !sink with
  | None -> ()
  | Some c ->
      Hashtbl.replace c.counter_table name
        (n + Option.value ~default:0 (Hashtbl.find_opt c.counter_table name));
      c.events <- c.events + 1

(* --- collector lifecycle ----------------------------------------------- *)

let close_open_spans c =
  match c.stack with
  | [] -> ()
  | _ ->
      let now = Sys.time () in
      let rec drain () =
        match c.stack with
        | [] -> ()
        | sp :: _ ->
            pop_until c sp now;
            drain ()
      in
      drain ()

let install c =
  (match !sink with Some old -> close_open_spans old | None -> ());
  sink := Some c

let uninstall () =
  (match !sink with Some c -> close_open_spans c | None -> ());
  sink := None

let collecting c f =
  install c;
  Fun.protect ~finally:uninstall f

let roots c = List.rev c.finished

let counters c =
  Hashtbl.fold (fun name count acc -> (name, count) :: acc) c.counter_table []
  |> List.sort compare

let event_count c = c.events

(* --- tree summary ------------------------------------------------------ *)

(* Runs of same-named siblings (one microarch session per shot, say)
   collapse into a single "name xN" line: integer attributes and sim-ns
   sum across the run, attributes equal everywhere carry over unchanged,
   and mixed non-integer attributes drop out. *)
type rollup = {
  r_name : string;
  r_count : int;
  r_wall : float;
  r_sim : int option;
  r_attrs : (string * value) list;
  r_children : node list;
}

let merge_attrs first rest =
  List.filter_map
    (fun (key, v0) ->
      let values = v0 :: List.filter_map (List.assoc_opt key) rest in
      if List.length values < 1 + List.length rest then None
      else
        match v0 with
        | Int _ ->
            let sum =
              List.fold_left
                (fun acc v -> match v with Int i -> acc + i | _ -> acc)
                0 values
            in
            Some (key, Int sum)
        | _ -> if List.for_all (fun v -> v = v0) values then Some (key, v0) else None)
    first

let rollup_of group =
  match group with
  | [] -> assert false
  | first :: rest ->
      let sim =
        if List.for_all (fun n -> n.sim_ns = None) group then None
        else
          Some
            (List.fold_left
               (fun acc n -> acc + Option.value ~default:0 n.sim_ns)
               0 group)
      in
      {
        r_name = first.span_name;
        r_count = List.length group;
        r_wall = List.fold_left (fun acc n -> acc +. n.wall_s) 0.0 group;
        r_sim = sim;
        r_attrs =
          (if rest = [] then first.attrs
           else merge_attrs first.attrs (List.map (fun n -> n.attrs) rest));
        r_children = List.concat_map (fun n -> n.children) group;
      }

let group_siblings nodes =
  let rec go acc current = function
    | [] -> List.rev (match current with [] -> acc | g -> List.rev g :: acc)
    | n :: rest -> (
        match current with
        | top :: _ when top.span_name = n.span_name -> go acc (n :: current) rest
        | [] -> go acc [ n ] rest
        | g -> go (List.rev g :: acc) [ n ] rest)
  in
  go [] [] nodes

let to_tree_string ?(show_wall = true) c =
  let buffer = Buffer.create 512 in
  let rec emit depth nodes =
    List.iter
      (fun group ->
        let r = rollup_of group in
        Buffer.add_string buffer (String.make (depth * 2) ' ');
        Buffer.add_string buffer "- ";
        Buffer.add_string buffer r.r_name;
        if r.r_count > 1 then Buffer.add_string buffer (Printf.sprintf " x%d" r.r_count);
        List.iter
          (fun (k, v) ->
            Buffer.add_string buffer (Printf.sprintf " %s=%s" k (value_to_string v)))
          r.r_attrs;
        (match r.r_sim with
        | Some ns -> Buffer.add_string buffer (Printf.sprintf " sim=%dns" ns)
        | None -> ());
        if show_wall then
          Buffer.add_string buffer (Printf.sprintf " [%.3fms]" (r.r_wall *. 1000.0));
        Buffer.add_char buffer '\n';
        emit (depth + 1) r.r_children)
      (group_siblings nodes)
  in
  emit 0 (roots c);
  (match counters c with
  | [] -> ()
  | cs ->
      Buffer.add_string buffer "counters:\n";
      List.iter
        (fun (name, count) ->
          Buffer.add_string buffer (Printf.sprintf "  %s %d\n" name count))
        cs);
  Buffer.contents buffer

(* --- Chrome trace_event JSON ------------------------------------------- *)

let json_escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let json_value = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%g" f
      else "\"" ^ Printf.sprintf "%g" f ^ "\""
  | String s -> "\"" ^ json_escape s ^ "\""
  | Bool b -> string_of_bool b

let to_chrome_json c =
  let nodes = roots c in
  let epoch =
    List.fold_left (fun acc n -> Float.min acc n.start_s) infinity nodes
  in
  let epoch = if Float.is_finite epoch then epoch else 0.0 in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buffer ',';
    Buffer.add_string buffer "\n"
  in
  let end_ts = ref 0.0 in
  let rec emit node =
    let ts = (node.start_s -. epoch) *. 1e6 in
    let dur = node.wall_s *. 1e6 in
    end_ts := Float.max !end_ts (ts +. dur);
    sep ();
    Buffer.add_string buffer
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"qca\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1"
         (json_escape node.span_name) ts dur);
    let args =
      (match node.sim_ns with Some ns -> [ ("sim_ns", Int ns) ] | None -> [])
      @ node.attrs
    in
    (match args with
    | [] -> ()
    | args ->
        Buffer.add_string buffer ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buffer ',';
            Buffer.add_string buffer
              (Printf.sprintf "\"%s\":%s" (json_escape k) (json_value v)))
          args;
        Buffer.add_char buffer '}');
    Buffer.add_char buffer '}';
    List.iter emit node.children
  in
  List.iter emit nodes;
  List.iter
    (fun (name, count) ->
      sep ();
      Buffer.add_string buffer
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"qca\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":{\"value\":%d}}"
           (json_escape name) !end_ts count))
    (counters c);
  Buffer.add_string buffer "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buffer
