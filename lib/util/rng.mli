(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the library takes an explicit [Rng.t] so
    that experiments and tests are reproducible bit-for-bit. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val streams : t -> int -> t array
(** [streams t k] derives [k] independent generators by splitting [t] once
    per stream, in index order. Because each stream costs exactly one parent
    draw, deriving [k] streams in one call is bit-identical to deriving them
    window-by-window from the same parent — the engine relies on this to
    keep sliced, sequential and parallel shot execution interchangeable. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_weighted : t -> float array -> int
(** [choose_weighted t w] draws index [i] with probability proportional to
    [w.(i)]; weights must be non-negative with a positive sum. *)
