type kind =
  | Unknown_mnemonic of string
  | Missing_pulse of string
  | Queue_overflow of { channel : int; depth : int }
  | Channel_loss of { qubit : int }
  | Backend_transient of string
  | Unknown_accelerator of string
  | Unsupported_gate of { platform : string; gate : string }
  | Non_convergence of string
  | Syntax of { line : int; token : string; reason : string }
  | Overloaded of { queued : int; capacity : int }
  | Quota_exceeded of { tenant : string; queued : int; limit : int }
  | Deadline_exceeded of { deadline_ms : int; elapsed_ms : int }
  | Crash_loop of { attempts : int }
  | Resource_exceeded of { resource : string; needed : float; limit : float }
  | Cancelled of string
  | Invalid of string

type t = {
  kind : kind;
  site : string;
  context : (string * string) list;
  transient : bool;
}

exception Error of t

(* Transient by construction: a repeat of the same operation can succeed.
   Everything else is a configuration or input problem that retrying cannot
   fix. *)
let transient_kind = function
  | Queue_overflow _ | Channel_loss _ | Backend_transient _ | Overloaded _
  | Quota_exceeded _ ->
      true
  | Unknown_mnemonic _ | Missing_pulse _ | Unknown_accelerator _
  | Unsupported_gate _ | Non_convergence _ | Syntax _ | Cancelled _
  | Invalid _ | Deadline_exceeded _ | Crash_loop _ | Resource_exceeded _ ->
      false

let kind_label = function
  | Unknown_mnemonic _ -> "unknown-mnemonic"
  | Missing_pulse _ -> "missing-pulse"
  | Queue_overflow _ -> "queue-overflow"
  | Channel_loss _ -> "channel-loss"
  | Backend_transient _ -> "backend-transient"
  | Unknown_accelerator _ -> "unknown-accelerator"
  | Unsupported_gate _ -> "unsupported-gate"
  | Non_convergence _ -> "non-convergence"
  | Syntax _ -> "syntax"
  | Overloaded _ -> "overloaded"
  | Quota_exceeded _ -> "quota-exceeded"
  | Deadline_exceeded _ -> "deadline-exceeded"
  | Crash_loop _ -> "crash-loop"
  | Resource_exceeded _ -> "resource-exceeded"
  | Cancelled _ -> "cancelled"
  | Invalid _ -> "invalid"

let kind_message = function
  | Unknown_mnemonic m -> Printf.sprintf "no micro-code entry for mnemonic '%s'" m
  | Missing_pulse p -> Printf.sprintf "ADI library has no pulse '%s'" p
  | Queue_overflow { channel; depth } ->
      Printf.sprintf "timing queue overflow on channel %d (depth %d)" channel depth
  | Channel_loss { qubit } ->
      Printf.sprintf "measurement channel for qubit %d lost" qubit
  | Backend_transient msg -> Printf.sprintf "transient backend failure: %s" msg
  | Unknown_accelerator name -> Printf.sprintf "unknown accelerator '%s'" name
  | Unsupported_gate { platform; gate } ->
      Printf.sprintf "platform %s cannot express gate %s" platform gate
  | Non_convergence what -> Printf.sprintf "did not converge: %s" what
  | Syntax { line; reason; _ } -> Printf.sprintf "line %d: %s" line reason
  | Overloaded { queued; capacity } ->
      Printf.sprintf "service overloaded: %d jobs queued (capacity %d)" queued
        capacity
  | Quota_exceeded { tenant; queued; limit } ->
      Printf.sprintf "tenant '%s' quota exceeded: %d jobs queued (limit %d)"
        tenant queued limit
  | Deadline_exceeded { deadline_ms; elapsed_ms } ->
      Printf.sprintf "deadline of %d ms exceeded after %d ms" deadline_ms
        elapsed_ms
  | Crash_loop { attempts } ->
      Printf.sprintf "job crashed the daemon %d times; retired as poison"
        attempts
  | Resource_exceeded { resource; needed; limit } ->
      Printf.sprintf "estimated %s %.3g exceeds the admission limit %.3g"
        resource needed limit
  | Cancelled job -> Printf.sprintf "job %s was cancelled" job
  | Invalid msg -> msg

let make ?(context = []) ?transient ~site kind =
  let transient =
    match transient with Some t -> t | None -> transient_kind kind
  in
  { kind; site; context; transient }

let fail ?context ?transient ~site kind =
  raise (Error (make ?context ?transient ~site kind))

let to_string e =
  let context =
    match e.context with
    | [] -> ""
    | kvs ->
        " ["
        ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ "]"
  in
  Printf.sprintf "%s: %s%s%s" e.site (kind_message e.kind)
    (if e.transient then " (transient)" else "")
    context

let of_exn = function
  | Error e -> Some e
  | Failure msg -> Some (make ~site:"<failwith>" (Invalid msg))
  | Invalid_argument msg -> Some (make ~site:"<invalid_arg>" (Invalid msg))
  | _ -> None

let protect ~site f =
  match f () with
  | v -> Ok v
  | exception Error e -> Stdlib.Error e
  | exception Failure msg -> Stdlib.Error (make ~site (Invalid msg))
  | exception Invalid_argument msg -> Stdlib.Error (make ~site (Invalid msg))
